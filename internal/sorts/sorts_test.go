package sorts

import (
	"fmt"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"wlpm/internal/algo"
	"wlpm/internal/pmem"
	"wlpm/internal/record"
	"wlpm/internal/storage"
	"wlpm/internal/storage/all"
)

// newEnv builds an environment on a fresh device with the given backend
// and memory budget in records.
func newEnv(t testing.TB, backend string, budgetRecords int) *algo.Env {
	t.Helper()
	dev := pmem.MustOpen(pmem.Config{Capacity: 256 << 20})
	f, err := all.New(backend, dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	return algo.NewEnv(f, int64(budgetRecords*record.Size))
}

// loadInput creates a collection with n permuted-key records.
func loadInput(t testing.TB, env *algo.Env, n int, seed uint64) storage.Collection {
	t.Helper()
	in, err := env.Factory.Create(fmt.Sprintf("in-%d-%d", n, seed), record.Size)
	if err != nil {
		t.Fatal(err)
	}
	if err := record.Generate(n, seed, in.Append); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	return in
}

func allAlgorithms() []Algorithm {
	return []Algorithm{
		NewExternalMergeSort(),
		NewSelectionSort(),
		NewSegmentSort(0.2),
		NewSegmentSort(0.8),
		NewSegmentSort(0),
		NewSegmentSort(1),
		NewAutoSegmentSort(),
		NewHybridSort(0.2),
		NewHybridSort(0.8),
		NewLazySort(),
	}
}

// runSort executes a and returns the sorted output collection.
func runSort(t testing.TB, env *algo.Env, a Algorithm, in storage.Collection) storage.Collection {
	t.Helper()
	out, err := env.CreateTemp("out", in.RecordSize())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Sort(env, in, out); err != nil {
		t.Fatalf("%s.Sort: %v", a.Name(), err)
	}
	return out
}

// checkSorted verifies out is an ascending permutation of keys 0..n-1.
func checkSorted(t testing.TB, a Algorithm, out storage.Collection, n int) {
	t.Helper()
	if out.Len() != n {
		t.Fatalf("%s: output has %d records, want %d", a.Name(), out.Len(), n)
	}
	if err := verifySortedInvariant(out); err != nil {
		t.Fatalf("%s: %v", a.Name(), err)
	}
	it := out.Scan()
	defer it.Close()
	for i := 0; i < n; i++ {
		rec, err := it.Next()
		if err != nil {
			t.Fatalf("%s: Next #%d: %v", a.Name(), i, err)
		}
		if got := record.Key(rec); got != uint64(i) {
			t.Fatalf("%s: record %d has key %d", a.Name(), i, got)
		}
	}
}

func TestAllAlgorithmsSortPermutedInput(t *testing.T) {
	const n = 3000
	for _, a := range allAlgorithms() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			env := newEnv(t, "blocked", 200) // M ≈ 6.7% of input
			in := loadInput(t, env, n, 42)
			out := runSort(t, env, a, in)
			checkSorted(t, a, out, n)
		})
	}
}

func TestSortAcrossBackends(t *testing.T) {
	const n = 1200
	for _, backend := range storage.Backends {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			for _, a := range []Algorithm{NewExternalMergeSort(), NewSegmentSort(0.5), NewHybridSort(0.5), NewLazySort()} {
				env := newEnv(t, backend, 150)
				in := loadInput(t, env, n, 7)
				out := runSort(t, env, a, in)
				checkSorted(t, a, out, n)
			}
		})
	}
}

func TestSortEmptyInput(t *testing.T) {
	for _, a := range allAlgorithms() {
		env := newEnv(t, "blocked", 64)
		in := loadInput(t, env, 0, 1)
		out := runSort(t, env, a, in)
		if out.Len() != 0 {
			t.Errorf("%s: empty input produced %d records", a.Name(), out.Len())
		}
	}
}

func TestSortSingleRecord(t *testing.T) {
	for _, a := range allAlgorithms() {
		env := newEnv(t, "blocked", 64)
		in := loadInput(t, env, 1, 1)
		out := runSort(t, env, a, in)
		checkSorted(t, a, out, 1)
	}
}

func TestSortInputFitsInMemory(t *testing.T) {
	for _, a := range allAlgorithms() {
		env := newEnv(t, "blocked", 1000)
		in := loadInput(t, env, 500, 3)
		out := runSort(t, env, a, in)
		checkSorted(t, a, out, 500)
	}
}

func TestSortTinyMemory(t *testing.T) {
	// Budget below one block still has to work (degenerate fan-in 2).
	for _, a := range allAlgorithms() {
		env := newEnv(t, "blocked", 8)
		in := loadInput(t, env, 300, 5)
		out := runSort(t, env, a, in)
		checkSorted(t, a, out, 300)
	}
}

func TestSortWithDuplicateKeys(t *testing.T) {
	const n = 2000
	for _, a := range allAlgorithms() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			env := newEnv(t, "blocked", 100)
			in, err := env.Factory.Create("dups", record.Size)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(11))
			hist := make(map[uint64]int)
			for i := 0; i < n; i++ {
				k := uint64(rng.Intn(50)) // heavy duplication
				hist[k]++
				if err := in.Append(record.New(k)); err != nil {
					t.Fatal(err)
				}
			}
			if err := in.Close(); err != nil {
				t.Fatal(err)
			}
			out := runSort(t, env, a, in)
			if out.Len() != n {
				t.Fatalf("%s: %d records out, want %d", a.Name(), out.Len(), n)
			}
			if err := verifySortedInvariant(out); err != nil {
				t.Fatal(err)
			}
			got := make(map[uint64]int)
			it := out.Scan()
			for {
				rec, err := it.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				got[record.Key(rec)]++
			}
			it.Close()
			for k, c := range hist {
				if got[k] != c {
					t.Fatalf("%s: key %d count %d, want %d", a.Name(), k, got[k], c)
				}
			}
		})
	}
}

func TestSortArgumentValidation(t *testing.T) {
	env := newEnv(t, "blocked", 100)
	in := loadInput(t, env, 10, 1)
	a := NewExternalMergeSort()

	out, _ := env.Factory.Create("nonempty", record.Size)
	if err := out.Append(record.New(1)); err != nil {
		t.Fatal(err)
	}
	if err := a.Sort(env, in, out); err == nil {
		t.Error("sort into non-empty output succeeded")
	}

	badEnv := algo.NewEnv(env.Factory, 0)
	out2, _ := env.Factory.Create("o2", record.Size)
	if err := a.Sort(badEnv, in, out2); err == nil {
		t.Error("sort with zero budget succeeded")
	}

	if err := NewSegmentSort(1.5).Sort(env, in, out2); err == nil {
		t.Error("SegS intensity 1.5 accepted")
	}
	if err := NewHybridSort(-0.1).Sort(env, in, out2); err == nil {
		t.Error("HybS intensity -0.1 accepted")
	}
}

// The headline property of the paper: write-limited sorts write fewer
// cachelines than external mergesort; lazy sort has the minimal profile.
func TestWriteProfileOrdering(t *testing.T) {
	const n = 6000
	budget := 300 // 5% of input
	writes := map[string]uint64{}
	reads := map[string]uint64{}
	for _, a := range []Algorithm{NewExternalMergeSort(), NewSegmentSort(0.2), NewHybridSort(0.2), NewLazySort()} {
		env := newEnv(t, "blocked", budget)
		in := loadInput(t, env, n, 13)
		dev := env.Factory.Device()
		dev.ResetStats()
		out := runSort(t, env, a, in)
		st := dev.Stats()
		writes[a.Name()] = st.Writes
		reads[a.Name()] = st.Reads
		checkSorted(t, a, out, n)
	}
	if !(writes["LaS"] < writes["SegS(0.20)"] && writes["SegS(0.20)"] < writes["ExMS"]) {
		t.Errorf("write ordering violated: LaS=%d SegS=%d ExMS=%d",
			writes["LaS"], writes["SegS(0.20)"], writes["ExMS"])
	}
	if writes["HybS(0.20)"] >= writes["ExMS"] {
		t.Errorf("HybS writes %d not below ExMS %d", writes["HybS(0.20)"], writes["ExMS"])
	}
	if reads["LaS"] <= reads["ExMS"] {
		t.Errorf("LaS should trade writes for reads: reads %d vs ExMS %d", reads["LaS"], reads["ExMS"])
	}
}

// SelS writes each input record exactly once (§2.1.1): total cacheline
// writes must be close to the input footprint.
func TestSelectionSortMinimalWrites(t *testing.T) {
	const n = 2000
	env := newEnv(t, "blocked", 100)
	in := loadInput(t, env, n, 17)
	dev := env.Factory.Device()
	dev.ResetStats()
	out := runSort(t, env, NewSelectionSort(), in)
	checkSorted(t, NewSelectionSort(), out, n)
	st := dev.Stats()
	footprint := uint64(n*record.Size) / uint64(dev.CachelineSize())
	if st.Writes > footprint*110/100 {
		t.Errorf("SelS wrote %d cachelines, want ≤ 1.1× footprint %d", st.Writes, footprint)
	}
	if st.Reads < footprint*3 {
		t.Errorf("SelS reads %d suspiciously low for multi-pass selection (footprint %d)", st.Reads, footprint)
	}
}

func TestCycleSortVec(t *testing.T) {
	v := record.NewVec(record.Size, 10)
	keys := []uint64{5, 2, 9, 1, 7, 3, 8, 0, 6, 4}
	for _, k := range keys {
		v.Append(record.New(k))
	}
	writes := CycleSortVec(v)
	if !v.SortedByKey() {
		t.Fatal("CycleSortVec did not sort")
	}
	if writes > len(keys) {
		t.Errorf("cycle sort wrote %d times for %d records", writes, len(keys))
	}
}

func TestCycleSortDuplicatesAndSorted(t *testing.T) {
	v := record.NewVec(record.Size, 8)
	for _, k := range []uint64{3, 1, 3, 2, 1, 3} {
		v.Append(record.New(k))
	}
	CycleSortVec(v)
	if !v.SortedByKey() {
		t.Fatal("cycle sort failed on duplicates")
	}
	// Already-sorted input: zero writes.
	w := CycleSortVec(v)
	if w != 0 {
		t.Errorf("cycle sort on sorted input wrote %d times", w)
	}
}

// Property: every algorithm sorts arbitrary key multisets at arbitrary
// small budgets.
func TestQuickSortersAreCorrect(t *testing.T) {
	algos := allAlgorithms()
	f := func(seed int64, budgetRaw uint8, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%800 + 1
		budget := int(budgetRaw)%120 + 4
		a := algos[rng.Intn(len(algos))]
		env := newEnv(t, "blocked", budget)
		in, err := env.Factory.Create("q", record.Size)
		if err != nil {
			return false
		}
		want := make(map[uint64]int)
		for i := 0; i < n; i++ {
			k := uint64(rng.Intn(n))
			want[k]++
			if err := in.Append(record.New(k)); err != nil {
				return false
			}
		}
		if err := in.Close(); err != nil {
			return false
		}
		out, err := env.CreateTemp("qo", record.Size)
		if err != nil {
			return false
		}
		if err := a.Sort(env, in, out); err != nil {
			t.Logf("%s: %v", a.Name(), err)
			return false
		}
		if out.Len() != n || verifySortedInvariant(out) != nil {
			t.Logf("%s: bad output (len %d want %d)", a.Name(), out.Len(), n)
			return false
		}
		got := make(map[uint64]int)
		it := out.Scan()
		defer it.Close()
		for {
			rec, err := it.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return false
			}
			got[record.Key(rec)]++
		}
		for k, c := range want {
			if got[k] != c {
				t.Logf("%s: key %d count %d want %d", a.Name(), k, got[k], c)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
