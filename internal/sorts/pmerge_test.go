package sorts

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"wlpm/internal/algo"
	"wlpm/internal/pmem"
	"wlpm/internal/record"
	"wlpm/internal/storage"
	"wlpm/internal/storage/all"
)

// keyDistributions generate the grid's input key patterns: uniform
// permuted keys, a skewed (quadratically clustered) domain, and a
// duplicate-heavy domain where every key repeats ~400 times.
var keyDistributions = []struct {
	name string
	key  func(i, n int, rng *testRNG) uint64
}{
	{"uniform", func(i, n int, rng *testRNG) uint64 { return rng.next() % uint64(4*n) }},
	{"skewed", func(i, n int, rng *testRNG) uint64 {
		v := rng.next() % uint64(n)
		return v * v / uint64(n) // quadratic pile-up near zero
	}},
	{"dups", func(i, n int, rng *testRNG) uint64 { return rng.next() % 50 }},
}

// testRNG is a deterministic xorshift generator, so grid inputs are
// identical across P without importing math/rand.
type testRNG struct{ s uint64 }

func (r *testRNG) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

// loadDistInput builds an input collection under the named distribution.
func loadDistInput(t testing.TB, env *algo.Env, n int, dist func(i, n int, rng *testRNG) uint64) storage.Collection {
	t.Helper()
	in, err := env.CreateTemp("gridin", record.Size)
	if err != nil {
		t.Fatal(err)
	}
	rng := &testRNG{s: 0x9e3779b97f4a7c15}
	rec := make([]byte, record.Size)
	for i := 0; i < n; i++ {
		record.Fill(rec, dist(i, n, rng))
		if err := in.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	return in
}

// newSpinEnv builds an environment whose device actually delays for the
// simulated latencies (yielding between spin checks), so concurrent
// workers interleave even on a single-CPU machine — required to observe
// the overlap clock dropping below the serial clock.
func newSpinEnv(t testing.TB, budgetRecords int) *algo.Env {
	t.Helper()
	dev := pmem.MustOpen(pmem.Config{Capacity: 256 << 20, Spin: true})
	f, err := all.New("blocked", dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	return algo.NewEnv(f, int64(budgetRecords*record.Size))
}

// sortGrid runs a at parallelism P and returns the output records, the
// device stats of the sort, and the final-merge phase accounting. spin
// selects a device that physically delays (see newSpinEnv).
func sortGrid(t *testing.T, a Algorithm, dist func(i, n int, rng *testRNG) uint64, n, budgetRecords, parallelism int, spin bool) ([][]byte, pmem.Stats, algo.PhaseStat) {
	t.Helper()
	var env *algo.Env
	if spin {
		env = newSpinEnv(t, budgetRecords)
	} else {
		env = newEnv(t, "blocked", budgetRecords)
	}
	env.Parallelism = parallelism
	rec := algo.NewPhaseRecorder()
	env.WithPhases(rec)
	in := loadDistInput(t, env, n, dist)
	out, err := env.Factory.Create("out", record.Size)
	if err != nil {
		t.Fatal(err)
	}
	env.Factory.Device().ResetStats()
	if err := a.Sort(env, in, out); err != nil {
		t.Fatalf("%s (P=%d): %v", a.Name(), parallelism, err)
	}
	st := env.Factory.Device().Stats()
	recs, err := storage.ReadAll(out)
	if err != nil {
		t.Fatal(err)
	}
	return recs, st, rec.Phase(FinalMergePhase)
}

// TestFinalMergeIdentityGrid is the byte-identity grid of the parallel
// final merge: P ∈ {2,4,8} × algorithms × key distributions, asserting
// output record-for-record equal to serial, final-merge phase cacheline
// writes *identical* to serial (the phase writes only reserved full
// blocks), and total reads/writes within the 5% tolerance.
func TestFinalMergeIdentityGrid(t *testing.T) {
	const n, budget = 20_000, 2500 // few large runs: the parallel final merge engages
	algos := []Algorithm{
		NewExternalMergeSort(),
		NewHybridSort(0.4),
		NewSegmentSort(0.6), // streaming segment: final merge stays serial, identity still holds
	}
	for _, a := range algos {
		for _, dist := range keyDistributions {
			serial, serialStats, serialPhase := sortGrid(t, a, dist.key, n, budget, 1, false)
			for _, p := range []int{2, 4, 8} {
				t.Run(fmt.Sprintf("%s/%s/P=%d", a.Name(), dist.name, p), func(t *testing.T) {
					parallel, parStats, parPhase := sortGrid(t, a, dist.key, n, budget, p, false)
					if len(serial) != len(parallel) {
						t.Fatalf("P=%d emitted %d records, serial %d", p, len(parallel), len(serial))
					}
					for i := range serial {
						if !bytes.Equal(serial[i], parallel[i]) {
							t.Fatalf("record %d differs: serial key %d, P=%d key %d",
								i, record.Key(serial[i]), p, record.Key(parallel[i]))
						}
					}
					if serialPhase.Stats.Writes != parPhase.Stats.Writes {
						t.Errorf("final-merge phase writes drifted: serial %d, P=%d %d",
							serialPhase.Stats.Writes, p, parPhase.Stats.Writes)
					}
					assertWithin(t, "total writes", serialStats.Writes, parStats.Writes, 0.05)
					assertWithin(t, "total reads", serialStats.Reads, parStats.Reads, 0.05)
				})
			}
		}
	}
}

// TestParallelFinalMergeEngages proves the lifted phase actually runs
// parallel: at P=8 the final-merge phase's overlap clock must advance
// strictly slower than its serial clock (workers were bracketed on the
// device), which cannot happen on the single-streamed serial path.
func TestParallelFinalMergeEngages(t *testing.T) {
	const n, budget = 20_000, 2500
	_, _, phase := sortGrid(t, NewExternalMergeSort(), keyDistributions[0].key, n, budget, 8, true)
	if phase.Stats.Writes == 0 {
		t.Fatal("final-merge phase recorded no writes; phase bracketing broken")
	}
	if phase.Stats.SimIOOverlap >= phase.Stats.SimIOTime {
		t.Errorf("final-merge overlap clock %v not below serial clock %v at P=8: merge ran serial",
			phase.Stats.SimIOOverlap, phase.Stats.SimIOTime)
	}
	if phase.Stats.SimIOOverlap == 0 {
		t.Error("final-merge overlap clock recorded nothing")
	}
}

// cancelAfterCtx cancels itself after its Err has been consulted n
// times — deterministically mid-merge, unlike a timer.
type cancelAfterCtx struct {
	context.Context
	remaining atomic.Int64
}

func (c *cancelAfterCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestFinalMergeCancellation cancels mid final merge at P=8 and asserts
// the error surfaces, every temp is swept, and no worker goroutine
// leaks.
func TestFinalMergeCancellation(t *testing.T) {
	const n, budget = 20_000, 2500
	env := newEnv(t, "blocked", budget)
	env.Parallelism = 8
	in := loadDistInput(t, env, n, keyDistributions[0].key)
	out, err := env.Factory.Create("out", record.Size)
	if err != nil {
		t.Fatal(err)
	}
	// Let run formation complete (~n/PollInterval polls) and cancel a few
	// polls into the merge phase.
	ctx := &cancelAfterCtx{Context: context.Background()}
	ctx.remaining.Store(int64(n/algo.PollInterval) + 20)
	env.WithContext(ctx)

	before := runtime.NumGoroutine()
	if err := NewExternalMergeSort().Sort(env, in, out); err == nil {
		t.Fatal("cancelled sort returned nil error")
	}
	if err := env.SweepTemps(); err != nil {
		t.Fatal(err)
	}
	if live := env.LiveTemps(); live != 0 {
		t.Errorf("%d live temps after cancellation sweep", live)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}
