package sorts

import (
	"fmt"

	"wlpm/internal/algo"
	"wlpm/internal/cost"
	"wlpm/internal/storage"
)

// SegmentSort is SegS (§2.1.1): the input is split into two segments. The
// first x·|T| records ("write intensity" x) are sorted with external
// mergesort's replacement-selection run formation; the remaining
// (1−x)·|T| records become a single long run via the write-minimal
// multi-pass selection sort. All runs are then merged. The selection
// segment participates in the final merge as a single streaming cursor,
// which keeps SegS's final merge serial even at P > 1 (parallelizing it
// would forfeit the segment's one-write-per-record property).
//
// x = 0 degenerates to selection sort (minimal writes), x = 1 to external
// mergesort (minimal response time under symmetric I/O).
type SegmentSort struct {
	// Intensity is x ∈ [0, 1]. When Auto is set, x is chosen by the cost
	// model's minimizer (Eq. 4) at Sort time.
	Intensity float64
	// Auto selects x from the cost model (Eq. 4) using |T|, M and λ.
	Auto bool
}

// NewSegmentSort returns SegS with a fixed write intensity.
func NewSegmentSort(x float64) *SegmentSort { return &SegmentSort{Intensity: x} }

// NewAutoSegmentSort returns SegS that places its knob via the cost model.
func NewAutoSegmentSort() *SegmentSort { return &SegmentSort{Auto: true} }

// Name implements Algorithm.
func (s *SegmentSort) Name() string {
	if s.Auto {
		return "SegS(auto)"
	}
	return fmt.Sprintf("SegS(%.2f)", s.Intensity)
}

// Sort implements Algorithm.
func (s *SegmentSort) Sort(env *algo.Env, in, out storage.Collection) error {
	if err := checkArgs(env, in, out); err != nil {
		return err
	}
	x := s.Intensity
	if s.Auto {
		bufs := float64(env.MemoryBudget) / float64(env.Factory.BlockSize())
		t := float64(in.Len()*in.RecordSize()) / float64(env.Factory.BlockSize())
		x = cost.SegmentSortOptimalX(t, bufs, env.Lambda())
	}
	if x < 0 || x > 1 {
		return fmt.Errorf("sorts: SegS intensity %v out of [0,1]", x)
	}
	recSize := in.RecordSize()
	split := int(x * float64(in.Len()))

	// Segment 1: external mergesort run formation over the prefix,
	// fanned out to env.Parallelism workers over contiguous chunks.
	var runs []storage.Collection
	if split > 0 {
		r, err := formRuns(env, storage.Slice(in, 0, split), recSize)
		if err != nil {
			return err
		}
		runs = r
	}

	// Segment 2: the suffix becomes a *streaming* sorted source — multi-
	// pass selection produces it lazily during the final merge, so each
	// of its records is written exactly once, at its final location in
	// the output. (Materializing it as a long run would forfeit the
	// algorithm's write savings: SegS writes ≈ (1+x)·|T| versus ExMS's
	// 2·|T|, the paper's 35%-fewer-writes headline at low intensity.)
	var streams []storage.Iterator
	if split < in.Len() {
		seg := storage.Slice(in, split, in.Len())
		streams = append(streams, newSelectionStream(env, seg, env.BudgetRecords(recSize)))
	}

	if err := mergeRunsWith(env, runs, streams, out, recSize); err != nil {
		return err
	}
	return out.Close()
}
