package sorts

import "wlpm/internal/record"

// CycleSortVec sorts v in place using cycle sort (Haddon 1990), the
// write-optimal comparison sort the paper cites as the theoretical floor:
// every record is written at most once, directly to its final position,
// at the price of quadratic reads. The paper's lazy algorithms are the
// external, budgeted descendants of this idea; cycle sort itself is an
// in-memory reference used by the ablation benchmarks. It returns the
// number of record writes performed.
func CycleSortVec(v *record.Vec) int {
	n := v.Len()
	writes := 0
	tmp := make([]byte, v.RecordSize())
	item := make([]byte, v.RecordSize())
	for start := 0; start < n-1; start++ {
		copy(item, v.At(start))

		// Find where item belongs: count records smaller than it.
		pos := start
		for i := start + 1; i < n; i++ {
			if record.Less(v.At(i), item) {
				pos++
			}
		}
		if pos == start {
			continue // already in place, zero writes
		}
		// Skip duplicates of item.
		for string(v.At(pos)) == string(item) {
			pos++
		}
		copy(tmp, v.At(pos))
		v.Set(pos, item)
		copy(item, tmp)
		writes++

		// Rotate the rest of the cycle.
		for pos != start {
			pos = start
			for i := start + 1; i < n; i++ {
				if record.Less(v.At(i), item) {
					pos++
				}
			}
			for string(v.At(pos)) == string(item) {
				pos++
			}
			copy(tmp, v.At(pos))
			v.Set(pos, item)
			copy(item, tmp)
			writes++
		}
	}
	return writes
}
