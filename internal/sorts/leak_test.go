package sorts

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"wlpm/internal/algo"
	"wlpm/internal/record"
	"wlpm/internal/storage"
)

// Algorithm-level leak discipline (the wlvet/tempsweep contract): a sort
// that fails — cancellation or a device error — must destroy every
// temporary it created before returning. These tests call Sort directly,
// without SortCtx's outer SweepTemps, so the algorithms' own error-path
// sweeps are what is under test.

// countingCtx counts Err calls without ever cancelling (calibration).
type countingCtx struct {
	context.Context
	calls atomic.Int64
}

func (c *countingCtx) Err() error {
	c.calls.Add(1)
	return c.Context.Err()
}

// countdownCtx reports Canceled from the n-th Err call onwards.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func newCountdownCtx(n int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.remaining.Store(n)
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return c.Context.Err()
}

// TestSortCancelSweepsTemps cancels each cancellation-polling algorithm
// at increasing depths — run formation, mid-run, merging — and asserts
// the algorithm itself left no live temporaries.
func TestSortCancelSweepsTemps(t *testing.T) {
	for _, a := range []Algorithm{NewExternalMergeSort(), NewHybridSort(0.5), NewLazySort()} {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			const n, budget = 6000, 50
			calib := &countingCtx{Context: context.Background()}
			env := newEnv(t, "blocked", budget).WithContext(calib)
			in := loadInput(t, env, n, 7)
			out, err := env.Factory.Create("out", record.Size)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Sort(env, in, out); err != nil {
				t.Fatalf("calibration run: %v", err)
			}
			if live := env.LiveTemps(); live != 0 {
				t.Fatalf("clean run left %d live temps", live)
			}
			total := calib.calls.Load()
			if total < 4 {
				t.Fatalf("algorithm polls cancellation only %d times; input too small to steer", total)
			}

			for _, frac := range []float64{0, 0.25, 0.5, 0.85} {
				polls := int64(float64(total) * frac)
				env := newEnv(t, "blocked", budget).WithContext(newCountdownCtx(polls))
				in := loadInput(t, env, n, 7)
				out, err := env.Factory.Create("out", record.Size)
				if err != nil {
					t.Fatal(err)
				}
				err = a.Sort(env, in, out)
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("cancel at poll %d/%d: err = %v, want context.Canceled", polls, total, err)
				}
				if live := env.LiveTemps(); live != 0 {
					t.Fatalf("cancel at poll %d/%d leaked %d temp collections", polls, total, live)
				}
			}
		})
	}
}

// failingAppend wraps a collection whose Append starts failing after a
// fixed number of records — an output-device error injected mid-sort.
type failingAppend struct {
	storage.Collection
	remaining int
}

var errAppendInjected = errors.New("injected append failure")

func (f *failingAppend) Append(rec []byte) error {
	if f.remaining <= 0 {
		return errAppendInjected
	}
	f.remaining--
	return f.Collection.Append(rec)
}

// TestLazySortOutputErrorSweepsTemp forces LaS into its materializing
// iteration (n=1 with T=100, M=60: Eq. 5 materializes immediately) and
// fails the output append while the fresh intermediate input Ti is
// live. The error must surface with zero temps left behind.
func TestLazySortOutputErrorSweepsTemp(t *testing.T) {
	env := newEnv(t, "blocked", 60)
	in := loadInput(t, env, 100, 11)
	out, err := env.Factory.Create("out", record.Size)
	if err != nil {
		t.Fatal(err)
	}
	err = NewLazySort().Sort(env, in, &failingAppend{Collection: out, remaining: 10})
	if !errors.Is(err, errAppendInjected) {
		t.Fatalf("err = %v, want injected append failure", err)
	}
	if live := env.LiveTemps(); live != 0 {
		t.Fatalf("failed sort leaked %d temp collections", live)
	}
}

// TestMergePassErrorSweepsMerged steers cancellation into the merge
// phase across a spread of poll depths and parallelism: whichever worker
// holds a freshly created merge output when mergeInto fails must destroy
// it (it is not yet published to the next generation).
func TestMergePassErrorSweepsMerged(t *testing.T) {
	const n, budget = 6000, 20 // tiny budget: many runs, several merge passes
	for _, par := range []int{1, 4} {
		par := par
		t.Run(fmt.Sprintf("p%d", par), func(t *testing.T) {
			calib := &countingCtx{Context: context.Background()}
			env := newParEnv(t, budget, par).WithContext(calib)
			in := loadInput(t, env, n, 3)
			out, err := env.Factory.Create("out", record.Size)
			if err != nil {
				t.Fatal(err)
			}
			if err := NewExternalMergeSort().Sort(env, in, out); err != nil {
				t.Fatal(err)
			}
			total := calib.calls.Load()
			// Late polls land inside mergeInto, after the pass created its
			// merge output temps.
			for _, frac := range []float64{0.5, 0.7, 0.9, 0.97} {
				polls := int64(float64(total) * frac)
				env := newParEnv(t, budget, par).WithContext(newCountdownCtx(polls))
				in := loadInput(t, env, n, 3)
				out, err := env.Factory.Create("out", record.Size)
				if err != nil {
					t.Fatal(err)
				}
				err = NewExternalMergeSort().Sort(env, in, out)
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("cancel at poll %d/%d: err = %v, want context.Canceled", polls, total, err)
				}
				if live := env.LiveTemps(); live != 0 {
					t.Fatalf("cancel at poll %d/%d leaked %d temp collections", polls, total, live)
				}
			}
		})
	}
}

// newParEnv is newEnv with worker parallelism.
func newParEnv(t testing.TB, budgetRecords, par int) *algo.Env {
	t.Helper()
	env := newEnv(t, "blocked", budgetRecords)
	return algo.NewParallelEnv(env.Factory, env.MemoryBudget, par)
}
