package sorts

import (
	"strings"
	"testing"

	"wlpm/internal/algo"
	"wlpm/internal/pmem"
	"wlpm/internal/record"
	"wlpm/internal/storage/all"
)

// Failure injection: a device too small for the algorithm's temporaries
// must surface a clean allocation error, never a panic or corruption.
func TestSortDeviceExhaustion(t *testing.T) {
	for _, backend := range []string{"blocked", "dynarray"} {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			// Input fits, temporaries don't: 2000 records = 160 KB on a
			// 256 KB device leaves no room for runs + output.
			dev := pmem.MustOpen(pmem.Config{Capacity: 256 << 10})
			f, err := all.New(backend, dev, 0)
			if err != nil {
				t.Fatal(err)
			}
			in, err := f.Create("in", record.Size)
			if err != nil {
				t.Fatal(err)
			}
			if err := record.Generate(2000, 1, in.Append); err != nil {
				// The dynarray backend may already exhaust the device
				// while loading (doubling holds old+new regions); that
				// is an acceptable clean failure for this test.
				if strings.Contains(err.Error(), "out of device memory") {
					return
				}
				t.Fatal(err)
			}
			if err := in.Close(); err != nil {
				t.Fatal(err)
			}
			out, err := f.Create("out", record.Size)
			if err != nil {
				t.Fatal(err)
			}
			env := algo.NewEnv(f, 100*record.Size)
			err = NewExternalMergeSort().Sort(env, in, out)
			if err == nil {
				t.Fatal("sort on an exhausted device succeeded")
			}
			if !strings.Contains(err.Error(), "out of device memory") {
				t.Fatalf("unexpected error: %v", err)
			}
		})
	}
}

// The filesystem backends surface inode exhaustion the same way.
func TestSortInodeExhaustion(t *testing.T) {
	dev := pmem.MustOpen(pmem.Config{Capacity: 512 << 20})
	f, err := all.New("pmfs", dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	in, err := f.Create("in", record.Size)
	if err != nil {
		t.Fatal(err)
	}
	if err := record.Generate(60000, 1, in.Append); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := f.Create("out", record.Size)
	if err != nil {
		t.Fatal(err)
	}
	// A 15-record budget over 60 k records forms thousands of runs —
	// more collections than the filesystem has inodes.
	env := algo.NewEnv(f, 15*record.Size)
	if err := NewExternalMergeSort().Sort(env, in, out); err == nil {
		t.Fatal("expected inode exhaustion, sort succeeded")
	} else if !strings.Contains(err.Error(), "inode") {
		t.Fatalf("unexpected error: %v", err)
	}
}
