package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wlpm/internal/pmem"
)

// tenantCounters accumulates one tenant's traffic. All fields are
// atomics: the streaming handlers bump them without a lock.
type tenantCounters struct {
	queries   atomic.Int64 // accepted (parsed, past auth)
	completed atomic.Int64 // streamed to the end marker
	errored   atomic.Int64 // failed after acceptance (parse errors excluded)
	cancelled atomic.Int64 // aborted by client disconnect or shutdown
	rows      atomic.Int64
	bytes     atomic.Int64 // result payload bytes (records, pre-encoding)
	active    atomic.Int64 // streaming right now
	gateWait  atomic.Int64 // ns spent waiting at the fairness gate
	admitWait atomic.Int64 // ns from gate exit to broker grant
}

// TenantMetrics is the wire form of one tenant's counters.
type TenantMetrics struct {
	Queries     int64 `json:"queries"`
	Completed   int64 `json:"completed"`
	Errors      int64 `json:"errors"`
	Cancelled   int64 `json:"cancelled"`
	Rows        int64 `json:"rows"`
	Bytes       int64 `json:"bytes"`
	Active      int64 `json:"active"`
	Queued      int   `json:"queued"` // waiting at the fairness gate now
	GateWaitMs  int64 `json:"gate_wait_ms"`
	AdmitWaitMs int64 `json:"admit_wait_ms"`
	Weight      int   `json:"weight"`
}

// metricsRegistry holds the per-tenant counters, keyed by tenant name.
type metricsRegistry struct {
	mu      sync.Mutex
	tenants map[string]*tenantCounters
}

func newMetricsRegistry() *metricsRegistry {
	return &metricsRegistry{tenants: make(map[string]*tenantCounters)}
}

func (m *metricsRegistry) tenant(name string) *tenantCounters {
	m.mu.Lock()
	defer m.mu.Unlock()
	tc, ok := m.tenants[name]
	if !ok {
		tc = &tenantCounters{}
		m.tenants[name] = tc
	}
	return tc
}

// snapshot renders every tenant's counters, merging in the gate's queue
// depths and the configured weights. Both inputs are plain data
// computed before the call: running a caller-supplied callback under
// m.mu would hide a lock edge (metricsRegistry.mu → whatever the
// callback takes) behind an indirect call, where wlvet/lockorder
// cannot prove it acyclic.
func (m *metricsRegistry) snapshot(queued map[string]int, weights map[string]int) map[string]TenantMetrics {
	m.mu.Lock()
	names := make([]string, 0, len(m.tenants))
	for name := range m.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string]TenantMetrics, len(names))
	for _, name := range names {
		tc := m.tenants[name]
		out[name] = TenantMetrics{
			Queries:     tc.queries.Load(),
			Completed:   tc.completed.Load(),
			Errors:      tc.errored.Load(),
			Cancelled:   tc.cancelled.Load(),
			Rows:        tc.rows.Load(),
			Bytes:       tc.bytes.Load(),
			Active:      tc.active.Load(),
			Queued:      queued[name],
			GateWaitMs:  tc.gateWait.Load() / int64(time.Millisecond),
			AdmitWaitMs: tc.admitWait.Load() / int64(time.Millisecond),
			Weight:      weightOf(weights, name),
		}
	}
	m.mu.Unlock()
	return out
}

// weightOf reads a tenant's configured weight with the gate's floor of
// one applied.
func weightOf(weights map[string]int, name string) int {
	if w := weights[name]; w > 1 {
		return w
	}
	return 1
}

// DeviceMetrics is the wire form of the simulated device counters.
type DeviceMetrics struct {
	Reads        uint64 `json:"cacheline_reads"`
	Writes       uint64 `json:"cacheline_writes"`
	ReadOps      uint64 `json:"read_ops"`
	WriteOps     uint64 `json:"write_ops"`
	BytesRead    uint64 `json:"bytes_read"`
	BytesWritten uint64 `json:"bytes_written"`
	SimIOMs      int64  `json:"sim_io_ms"`
	SimOverlapMs int64  `json:"sim_io_overlap_ms"`
	SoftMs       int64  `json:"soft_ms"`
}

func deviceMetrics(s pmem.Stats) DeviceMetrics {
	return DeviceMetrics{
		Reads:        s.Reads,
		Writes:       s.Writes,
		ReadOps:      s.ReadOps,
		WriteOps:     s.WriteOps,
		BytesRead:    s.BytesRead,
		BytesWritten: s.BytesWritten,
		SimIOMs:      int64(s.SimIOTime / time.Millisecond),
		SimOverlapMs: int64(s.SimIOOverlap / time.Millisecond),
		SoftMs:       int64(s.SoftTime / time.Millisecond),
	}
}

// Metrics is the GET /v1/metrics document.
type Metrics struct {
	UptimeMs  int64                    `json:"uptime_ms"`
	InFlight  int64                    `json:"in_flight"`
	GateDepth int                      `json:"gate_depth"`
	Broker    BrokerStats              `json:"broker"`
	Device    DeviceMetrics            `json:"device"`
	Tenants   map[string]TenantMetrics `json:"tenants"`
}
