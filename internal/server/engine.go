// Package server is the network-facing multi-tenant query service: an
// HTTP front over the session/broker/cursor machinery. It accepts the
// plan DSL over POST /v1/query and streams result batches back as
// NDJSON with backpressure (a stalled or disconnected client cancels
// the cursor through the ordinary context plumbing, releasing its
// memory grant and temporaries), returns compiled-plan explanations
// from POST /v1/explain, and exposes broker, device and per-tenant
// counters on GET /v1/metrics.
//
// Each authenticated tenant maps to one engine session with its own
// working-memory budget and admission policy, and a queue-aware
// admission gate (see FairGate) schedules broker entry with per-tenant
// weighted fairness over the broker's FIFO, so one tenant's burst
// cannot starve the others.
//
// The package talks to the engine through the Engine interface below —
// implemented by the wlpm façade (System.ServeEngine) and injected at
// construction — so it layers over the façade without importing it.
package server

import (
	"context"

	"wlpm/internal/exec"
	"wlpm/internal/pmem"
)

// Engine is the query engine the server fronts.
type Engine interface {
	// OpenSession creates the execution session of one tenant: its
	// queries request grants of the given budget (0 = engine default)
	// under blocking admission, or fail-fast when failFast is set;
	// bidSlack > 0 turns on grant bidding with that accepted slowdown.
	OpenSession(tenant string, budget int64, failFast bool, bidSlack float64) (EngineSession, error)
	// BrokerStats snapshots the memory broker's admission counters.
	BrokerStats() BrokerStats
	// DeviceStats snapshots the simulated device's counters.
	DeviceStats() pmem.Stats
}

// BrokerStats is the broker's admission telemetry: the rationed total,
// the outstanding grants, the high-water mark and the FIFO queue depth.
type BrokerStats struct {
	Total     int64 `json:"total_bytes"`
	InUse     int64 `json:"in_use_bytes"`
	HighWater int64 `json:"high_water_bytes"`
	Waiting   int   `json:"waiting"`
}

// EngineSession is one tenant's handle on the engine. Implementations
// must be safe for concurrent use — the server runs many requests of
// one tenant at a time.
type EngineSession interface {
	// Query parses the plan DSL against the server's table catalog.
	Query(dsl string) (EngineQuery, error)
	Close() error
}

// EngineQuery is one parsed query, ready to explain or execute.
type EngineQuery interface {
	// Explain compiles the plan at the session's grant size without
	// running it.
	Explain() (*exec.Explain, error)
	// Rows admits the query through the memory broker and returns its
	// streaming cursor. Cancelling ctx aborts both the admission wait
	// and the stream, releasing the grant and destroying temporaries.
	Rows(ctx context.Context) (RowStream, error)
}

// RowStream is a streaming result cursor, the server-side face of the
// façade's Rows.
type RowStream interface {
	Next() bool
	// Record is the current record; valid until the following Next.
	Record() []byte
	RecordSize() int
	Err() error
	// Explain describes the compiled plan (with actuals after the
	// stream is drained).
	Explain() *exec.Explain
	Close() error
}
