package server

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestServeFairGateWeightedOrder pins the stride schedule: with tenant b
// at weight 2 and tenant a at weight 1, a fully backlogged gate admits
// b twice per a admission.
func TestServeFairGateWeightedOrder(t *testing.T) {
	g := NewFairGate()
	// Occupy the critical section so every later Enter queues.
	if err := g.Enter(context.Background(), "x", 1); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	enqueue := func(tenant string, weight, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := g.Enter(context.Background(), tenant, weight); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				order = append(order, tenant)
				mu.Unlock()
				g.Exit()
			}()
			// Serialize arrivals so per-tenant FIFO positions are fixed.
			waitDepth(t, g, 1+i+map[string]int{"a": 0, "b": 4}[tenant])
		}
	}
	enqueue("a", 1, 4)
	enqueue("b", 2, 4)
	waitDepth(t, g, 8)

	g.Exit() // release the holder; the cascade drains the queue
	wg.Wait()

	want := []string{"a", "b", "b", "a", "b", "b", "a", "a"}
	if len(order) != len(want) {
		t.Fatalf("admitted %d, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("admission order %v, want %v", order, want)
		}
	}
	if d := g.Depth(); d != 0 {
		t.Fatalf("depth %d after drain, want 0", d)
	}
}

// TestServeFairGateCancel removes a cancelled waiter without disturbing
// the schedule.
func TestServeFairGateCancel(t *testing.T) {
	g := NewFairGate()
	if err := g.Enter(context.Background(), "x", 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- g.Enter(ctx, "a", 1) }()
	waitDepth(t, g, 1)

	admitted := make(chan struct{})
	go func() {
		if err := g.Enter(context.Background(), "b", 1); err != nil {
			t.Error(err)
			return
		}
		close(admitted)
	}()
	waitDepth(t, g, 2)

	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled Enter returned %v", err)
	}
	if d := g.Depth(); d != 1 {
		t.Fatalf("depth %d after cancel, want 1", d)
	}
	if q := g.QueueDepths(); q["a"] != 0 || q["b"] != 1 {
		t.Fatalf("queue depths %v, want only b:1", q)
	}

	g.Exit()
	select {
	case <-admitted:
	case <-time.After(5 * time.Second):
		t.Fatal("b never admitted after cancel + exit")
	}
	g.Exit()
	if d := g.Depth(); d != 0 {
		t.Fatalf("depth %d, want 0", d)
	}
}

// TestServeFairGateIdleNoCredit pins virtual-time catch-up: a tenant
// idle through many admissions does not bank credit to burst with.
func TestServeFairGateIdleNoCredit(t *testing.T) {
	g := NewFairGate()
	// Advance virtual time with a lone tenant.
	for i := 0; i < 100; i++ {
		if err := g.Enter(context.Background(), "a", 1); err != nil {
			t.Fatal(err)
		}
		g.Exit()
	}
	// Hold the section, backlog one a and two late-arriving b.
	if err := g.Enter(context.Background(), "a", 1); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	spawn := func(tenant string, after int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Enter(context.Background(), tenant, 1); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, tenant)
			mu.Unlock()
			g.Exit()
		}()
		waitDepth(t, g, after)
	}
	spawn("a", 1)
	spawn("b", 2)
	spawn("b", 3)
	g.Exit()
	wg.Wait()
	// b starts at the current virtual time, not at 0: it alternates with
	// a instead of burning its "saved up" 100 admissions first.
	if order[0] != "a" && order[1] != "a" {
		t.Fatalf("admission order %v: the idle tenant burst past the active one", order)
	}
}

func waitDepth(t *testing.T, g *FairGate, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for g.Depth() < want {
		if time.Now().After(deadline) {
			t.Fatalf("gate depth stuck at %d, want %d", g.Depth(), want)
		}
		time.Sleep(100 * time.Microsecond)
	}
}
