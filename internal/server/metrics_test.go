package server

import "testing"

// TestSnapshotMergesQueueAndWeights pins the snapshot contract after
// the lock-discipline restructuring: queue depths and weights arrive as
// plain maps computed before the call, never as callbacks that would
// take other locks under metricsRegistry.mu.
func TestSnapshotMergesQueueAndWeights(t *testing.T) {
	m := newMetricsRegistry()
	m.tenant("alpha").queries.Add(3)
	m.tenant("alpha").rows.Add(42)
	m.tenant("beta").queries.Add(1)

	out := m.snapshot(
		map[string]int{"alpha": 2},
		map[string]int{"alpha": 5, "beta": 0},
	)
	if len(out) != 2 {
		t.Fatalf("snapshot has %d tenants, want 2", len(out))
	}
	a := out["alpha"]
	if a.Queries != 3 || a.Rows != 42 || a.Queued != 2 || a.Weight != 5 {
		t.Errorf("alpha = %+v, want queries=3 rows=42 queued=2 weight=5", a)
	}
	b := out["beta"]
	if b.Queries != 1 || b.Queued != 0 || b.Weight != 1 {
		t.Errorf("beta = %+v, want queries=1 queued=0 weight=1 (floor)", b)
	}
}

func TestWeightOfFloorsAtOne(t *testing.T) {
	weights := map[string]int{"big": 7, "zero": 0, "neg": -3}
	for name, want := range map[string]int{"big": 7, "zero": 1, "neg": 1, "absent": 1} {
		if got := weightOf(weights, name); got != want {
			t.Errorf("weightOf(%q) = %d, want %d", name, got, want)
		}
	}
}

// TestTenantWeightsSnapshot: the server copies configured weights out
// under s.mu so the registry renders from plain data.
func TestTenantWeightsSnapshot(t *testing.T) {
	s, _ := newTestServer(t,
		Tenant{Name: "gold", Weight: 4},
		Tenant{Name: "steerage", Weight: 0},
	)
	w := s.tenantWeights()
	if w["gold"] != 4 {
		t.Errorf("gold weight = %d, want 4 (as configured)", w["gold"])
	}
	if got := weightOf(w, "steerage"); got != 1 {
		t.Errorf("steerage effective weight = %d, want 1", got)
	}
}
