package server

import (
	"context"
	"sync"
)

// FairGate is the queue-aware admission wrapper layered over the memory
// broker's FIFO: queries wait in per-tenant queues and are released
// toward broker admission one at a time, in start-time-fair-queueing
// order — each tenant accumulates virtual time in proportion to 1/weight
// per admitted query, and the gate always picks the backlogged tenant
// with the least virtual time. A tenant bursting a hundred queries
// therefore interleaves with, instead of walling off, every other
// tenant's traffic: without the gate the burst would occupy a hundred
// consecutive slots of the broker's FIFO queue.
//
// The protocol is Enter → (acquire the broker grant) → Exit: only one
// query at a time sits between Enter and Exit, so the broker's FIFO
// sees queries in exactly the gate's weighted order. Exit must be
// called exactly once per successful Enter, whether or not the broker
// admission succeeded. A cancelled Enter cleans up after itself.
type FairGate struct {
	mu     sync.Mutex
	busy   bool // a query holds the Enter→Exit critical section
	vtime  float64
	pass   map[string]float64
	queues map[string][]*gateWaiter
	depth  int
}

type gateWaiter struct {
	tenant string
	weight int
	ready  chan struct{}
}

// NewFairGate returns an empty gate.
func NewFairGate() *FairGate {
	return &FairGate{
		pass:   make(map[string]float64),
		queues: make(map[string][]*gateWaiter),
	}
}

// Enter blocks until the gate schedules this tenant's turn to proceed
// to broker admission (or ctx is cancelled). weight < 1 counts as 1.
func (g *FairGate) Enter(ctx context.Context, tenant string, weight int) error {
	if weight < 1 {
		weight = 1
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	g.mu.Lock()
	if !g.busy && g.depth == 0 {
		g.admitLocked(tenant, weight)
		g.mu.Unlock()
		return nil
	}
	w := &gateWaiter{tenant: tenant, weight: weight, ready: make(chan struct{})}
	if len(g.queues[tenant]) == 0 {
		// A newly backlogged tenant starts at the current virtual time:
		// idling must not bank credit it can later burst through.
		if g.pass[tenant] < g.vtime {
			g.pass[tenant] = g.vtime
		}
	}
	g.queues[tenant] = append(g.queues[tenant], w)
	g.depth++
	g.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		g.mu.Lock()
		select {
		case <-w.ready:
			// Lost race: scheduled between Done and the lock. We own the
			// critical section — hand it to the next waiter.
			g.exitLocked()
			g.mu.Unlock()
			return ctx.Err()
		default:
		}
		q := g.queues[tenant]
		for i, cand := range q {
			if cand == w {
				g.queues[tenant] = append(q[:i], q[i+1:]...)
				g.depth--
				break
			}
		}
		if len(g.queues[tenant]) == 0 {
			delete(g.queues, tenant)
		}
		g.mu.Unlock()
		return ctx.Err()
	}
}

// Exit releases the critical section and schedules the next waiter.
func (g *FairGate) Exit() {
	g.mu.Lock()
	g.exitLocked()
	g.mu.Unlock()
}

// exitLocked picks the backlogged tenant with the least virtual time
// (ties broken by name for determinism) and wakes its head waiter.
// Caller holds g.mu.
func (g *FairGate) exitLocked() {
	g.busy = false
	best := ""
	for t, q := range g.queues {
		if len(q) == 0 {
			continue
		}
		if best == "" || g.pass[t] < g.pass[best] || (g.pass[t] == g.pass[best] && t < best) {
			best = t
		}
	}
	if best == "" {
		return
	}
	w := g.queues[best][0]
	if len(g.queues[best]) == 1 {
		delete(g.queues, best)
	} else {
		g.queues[best] = g.queues[best][1:]
	}
	g.depth--
	g.admitLocked(best, w.weight)
	close(w.ready)
}

// admitLocked charges tenant's virtual time for one admission and marks
// the critical section busy. Caller holds g.mu.
func (g *FairGate) admitLocked(tenant string, weight int) {
	if g.pass[tenant] < g.vtime {
		g.pass[tenant] = g.vtime
	}
	g.vtime = g.pass[tenant]
	g.pass[tenant] += 1 / float64(weight)
	g.busy = true
}

// Depth reports the number of queries waiting at the gate.
func (g *FairGate) Depth() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.depth
}

// QueueDepths reports the waiting queries per tenant (absent = none).
func (g *FairGate) QueueDepths() map[string]int {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]int, len(g.queues))
	for t, q := range g.queues {
		if len(q) > 0 {
			out[t] = len(q)
		}
	}
	return out
}
