package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"wlpm/internal/exec"
	"wlpm/internal/pmem"
)

// fakeEngine serves plans of the form "rows(N)": N records of two
// little-endian uint64 attrs, (i, i*i). It lets the handler tests run
// without a storage rig.
type fakeEngine struct {
	sessions atomic.Int64
	closed   atomic.Int64
}

func (e *fakeEngine) OpenSession(tenant string, budget int64, failFast bool, bidSlack float64) (EngineSession, error) {
	e.sessions.Add(1)
	return &fakeSession{eng: e, tenant: tenant}, nil
}

func (e *fakeEngine) BrokerStats() BrokerStats {
	return BrokerStats{Total: 1 << 20, InUse: 1 << 10, HighWater: 1 << 11, Waiting: 3}
}

func (e *fakeEngine) DeviceStats() pmem.Stats { return pmem.Stats{Reads: 7, Writes: 5} }

type fakeSession struct {
	eng    *fakeEngine
	tenant string
}

func (s *fakeSession) Query(dsl string) (EngineQuery, error) {
	var n int
	if _, err := fmt.Sscanf(dsl, "rows(%d)", &n); err != nil {
		return nil, fmt.Errorf("bad plan %q", dsl)
	}
	return &fakeQuery{n: n}, nil
}

func (s *fakeSession) Close() error { s.eng.closed.Add(1); return nil }

type fakeQuery struct{ n int }

func (q *fakeQuery) Explain() (*exec.Explain, error) {
	return &exec.Explain{Root: "fake", RecordSize: 16}, nil
}

func (q *fakeQuery) Rows(ctx context.Context) (RowStream, error) {
	return &fakeStream{n: q.n, ctx: ctx, rec: make([]byte, 16)}, nil
}

type fakeStream struct {
	n, i int
	ctx  context.Context
	rec  []byte
	err  error
}

func (st *fakeStream) Next() bool {
	if st.err != nil || st.i >= st.n {
		return false
	}
	if err := st.ctx.Err(); err != nil {
		st.err = err
		return false
	}
	binary.LittleEndian.PutUint64(st.rec[0:], uint64(st.i))
	binary.LittleEndian.PutUint64(st.rec[8:], uint64(st.i*st.i))
	st.i++
	return true
}

func (st *fakeStream) Record() []byte         { return st.rec }
func (st *fakeStream) RecordSize() int        { return 16 }
func (st *fakeStream) Err() error             { return st.err }
func (st *fakeStream) Explain() *exec.Explain { return &exec.Explain{Root: "fake", RecordSize: 16} }
func (st *fakeStream) Close() error           { return nil }

func newTestServer(t *testing.T, tenants ...Tenant) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{Engine: &fakeEngine{}, Tenants: tenants})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

func postQuery(t *testing.T, url, plan string, hdr map[string]string) *http.Response {
	t.Helper()
	body, _ := json.Marshal(QueryRequest{Plan: plan})
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestServeHandlerStreamsRows checks the NDJSON stream shape end to end:
// header, attr-array rows in order, terminal end with the row count.
func TestServeHandlerStreamsRows(t *testing.T) {
	_, hs := newTestServer(t)
	resp := postQuery(t, hs.URL+"/v1/query", "rows(100)", nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	var rows int
	var sawHeader, sawEnd bool
	for sc.Scan() {
		var line Line
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Header != nil:
			if rows > 0 || sawHeader {
				t.Fatal("header not first")
			}
			sawHeader = true
			if line.Header.RecordSize != 16 || line.Header.Attrs != 2 {
				t.Fatalf("header %+v", line.Header)
			}
		case line.Row != nil:
			if want := uint64(rows); line.Row[0] != want || line.Row[1] != want*want {
				t.Fatalf("row %d = %v", rows, line.Row)
			}
			rows++
		case line.End != nil:
			sawEnd = true
			if line.End.Rows != 100 {
				t.Fatalf("end rows %d", line.End.Rows)
			}
			if line.End.Explain == nil || line.End.Explain.Root != "fake" {
				t.Fatalf("end explain %+v", line.End.Explain)
			}
		case line.Error != "":
			t.Fatalf("stream error: %s", line.Error)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawHeader || rows != 100 || !sawEnd {
		t.Fatalf("header=%v rows=%d end=%v", sawHeader, rows, sawEnd)
	}
}

// TestServeHandlerAuth pins the tenant resolution matrix with a
// configured tenant set: token → tenant, token-less tenant by header,
// unknown token and missing credentials → 401.
func TestServeHandlerAuth(t *testing.T) {
	_, hs := newTestServer(t,
		Tenant{Name: "alpha", Token: "secret-a"},
		Tenant{Name: "beta"}, // open: selected by header
	)
	cases := []struct {
		name string
		hdr  map[string]string
		code int
	}{
		{"good token", map[string]string{"Authorization": "Bearer secret-a"}, http.StatusOK},
		{"bad token", map[string]string{"Authorization": "Bearer nope"}, http.StatusUnauthorized},
		{"bad scheme", map[string]string{"Authorization": "Basic abc"}, http.StatusUnauthorized},
		{"open tenant by header", map[string]string{TenantHeader: "beta"}, http.StatusOK},
		{"token tenant by header", map[string]string{TenantHeader: "alpha"}, http.StatusUnauthorized},
		{"no credentials", nil, http.StatusUnauthorized},
		{"unknown tenant", map[string]string{TenantHeader: "gamma"}, http.StatusUnauthorized},
	}
	for _, tc := range cases {
		resp := postQuery(t, hs.URL+"/v1/query", "rows(1)", tc.hdr)
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.code)
		}
	}
}

// TestServeHandlerErrors pins the non-streaming error answers.
func TestServeHandlerErrors(t *testing.T) {
	_, hs := newTestServer(t)
	resp := postQuery(t, hs.URL+"/v1/query", "not a plan", nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad plan: status %d", resp.StatusCode)
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("bad plan: error doc %+v, %v", e, err)
	}
	resp2, err := http.Get(hs.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET query: status %d", resp2.StatusCode)
	}
}

// TestServeHandlerExplain checks POST /v1/explain returns the compiled
// explanation as one JSON document.
func TestServeHandlerExplain(t *testing.T) {
	_, hs := newTestServer(t)
	resp := postQuery(t, hs.URL+"/v1/explain", "rows(5)", nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var doc ExplainResponse
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Explain == nil || doc.Explain.Root != "fake" || doc.Explain.RecordSize != 16 {
		t.Fatalf("explain %+v", doc.Explain)
	}
}

// TestServeHandlerMetrics checks the metrics document: broker stats pass
// through, per-tenant counters accumulate.
func TestServeHandlerMetrics(t *testing.T) {
	_, hs := newTestServer(t)
	for i := 0; i < 3; i++ {
		resp := postQuery(t, hs.URL+"/v1/query", "rows(10)", map[string]string{TenantHeader: "alice"})
		drainBody(t, resp)
	}
	resp := postQuery(t, hs.URL+"/v1/query", "rows(4)", map[string]string{TenantHeader: "bob"})
	drainBody(t, resp)

	mresp, err := http.Get(hs.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", mresp.StatusCode)
	}
	var m Metrics
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Broker.Total != 1<<20 || m.Broker.Waiting != 3 {
		t.Fatalf("broker %+v", m.Broker)
	}
	if m.Device.Reads != 7 || m.Device.Writes != 5 {
		t.Fatalf("device %+v", m.Device)
	}
	alice, bob := m.Tenants["alice"], m.Tenants["bob"]
	if alice.Queries != 3 || alice.Completed != 3 || alice.Rows != 30 || alice.Bytes != 480 {
		t.Fatalf("alice %+v", alice)
	}
	if bob.Queries != 1 || bob.Rows != 4 {
		t.Fatalf("bob %+v", bob)
	}
	if m.InFlight != 0 || m.GateDepth != 0 {
		t.Fatalf("in_flight=%d gate_depth=%d after drain", m.InFlight, m.GateDepth)
	}
}

// TestServeShutdownClosesSessions checks graceful shutdown closes the
// opened engine sessions exactly once.
func TestServeShutdownClosesSessions(t *testing.T) {
	eng := &fakeEngine{}
	s, err := New(Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	for _, tenant := range []string{"a", "b"} {
		resp := postQuery(t, hs.URL+"/v1/query", "rows(1)", map[string]string{TenantHeader: tenant})
		drainBody(t, resp)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := eng.closed.Load(); got != eng.sessions.Load() || got != 2 {
		t.Fatalf("closed %d of %d sessions", got, eng.sessions.Load())
	}
	select {
	case <-s.base.Done():
	default:
		t.Fatal("base context not cancelled after Shutdown")
	}
}

func drainBody(t *testing.T, resp *http.Response) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b := new(strings.Builder)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			b.WriteString(sc.Text())
		}
		t.Fatalf("status %d: %s", resp.StatusCode, b.String())
	}
	sc := bufio.NewScanner(resp.Body)
	var last Line
	for sc.Scan() {
		last = Line{}
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatal(err)
		}
	}
	if last.End == nil {
		t.Fatalf("stream did not end cleanly: %+v", last)
	}
}
