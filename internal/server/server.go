package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wlpm/internal/broker"
	"wlpm/internal/record"
)

// TenantHeader selects the tenant on unauthenticated requests: in open
// mode it names (and auto-provisions) the tenant; with configured
// tenants it selects a tenant whose token is empty.
const TenantHeader = "X-Wlpm-Tenant"

// DefaultTenant is the tenant of open-mode requests without TenantHeader.
const DefaultTenant = "default"

// Tenant configures one tenant of the service.
type Tenant struct {
	Name string
	// Token is the bearer token that authenticates the tenant
	// (Authorization: Bearer <token>). Empty means the tenant is open:
	// requests select it by the TenantHeader header, unauthenticated.
	Token string
	// Weight is the tenant's share of admissions under contention; the
	// fairness gate admits tenants' queries proportionally to their
	// weights. Values below 1 count as 1.
	Weight int
	// Budget is the per-query working-memory grant of the tenant's
	// session (0 = engine default).
	Budget int64
	// FailFast makes the tenant's queries fail with 503 instead of
	// queueing when their grant does not fit.
	FailFast bool
	// BidSlack > 0 turns on grant bidding with that accepted slowdown
	// (see the façade's WithGrantBidding).
	BidSlack float64
}

// Config configures New.
type Config struct {
	// Engine executes the queries. Required.
	Engine Engine
	// Tenants is the closed tenant set. Empty turns on open mode: any
	// TenantHeader value names a tenant, auto-provisioned with engine
	// defaults, and requests without the header use DefaultTenant.
	Tenants []Tenant
	// DrainTimeout bounds graceful shutdown's first phase: in-flight
	// streams get this long to finish before their contexts are
	// cancelled (default 10s).
	DrainTimeout time.Duration
	// FlushRows flushes the response stream every this many rows
	// (default 64), bounding how long a slow consumer's rows sit in the
	// server's buffers.
	FlushRows int
	// Logf, when set, receives one line per completed request.
	Logf func(format string, args ...any)
}

// Server is the HTTP query service. Construct with New, expose with
// Handler or Serve, stop with Shutdown.
type Server struct {
	cfg   Config
	eng   Engine
	gate  *FairGate
	met   *metricsRegistry
	mux   *http.ServeMux
	start time.Time

	// base is cancelled to abort every in-flight query (shutdown's
	// second phase); each request context is derived from both the
	// client connection and base.
	base       context.Context
	cancelBase context.CancelFunc

	mu      sync.Mutex
	byName  map[string]*tenantState
	byToken map[string]*tenantState
	open    bool // no configured tenants: auto-provision by header

	inFlight atomic.Int64

	hsMu sync.Mutex
	hs   *http.Server
}

// tenantState is one tenant's runtime: its config and its lazily opened
// engine session.
type tenantState struct {
	cfg  Tenant
	once sync.Once
	sess EngineSession
	err  error
}

func (ts *tenantState) session(eng Engine) (EngineSession, error) {
	ts.once.Do(func() {
		ts.sess, ts.err = eng.OpenSession(ts.cfg.Name, ts.cfg.Budget, ts.cfg.FailFast, ts.cfg.BidSlack)
	})
	return ts.sess, ts.err
}

// New builds a Server over cfg.Engine.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("server: Config.Engine is required")
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.FlushRows <= 0 {
		cfg.FlushRows = 64
	}
	//lint:allow wlvet/ctxparam the server owns its lifetime root; per-request contexts derive from it and Shutdown cancels it
	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		eng:        cfg.Engine,
		gate:       NewFairGate(),
		met:        newMetricsRegistry(),
		mux:        http.NewServeMux(),
		start:      time.Now(),
		base:       base,
		cancelBase: cancel,
		byName:     make(map[string]*tenantState),
		byToken:    make(map[string]*tenantState),
		open:       len(cfg.Tenants) == 0,
	}
	for _, t := range cfg.Tenants {
		if t.Name == "" {
			return nil, errors.New("server: tenant with empty name")
		}
		if _, dup := s.byName[t.Name]; dup {
			return nil, fmt.Errorf("server: duplicate tenant %q", t.Name)
		}
		ts := &tenantState{cfg: t}
		s.byName[t.Name] = ts
		if t.Token != "" {
			if _, dup := s.byToken[t.Token]; dup {
				return nil, fmt.Errorf("server: tenants share a token")
			}
			s.byToken[t.Token] = ts
		}
	}
	s.mux.HandleFunc("/v1/query", s.handleQuery)
	s.mux.HandleFunc("/v1/explain", s.handleExplain)
	s.mux.HandleFunc("/v1/metrics", s.handleMetrics)
	return s, nil
}

// Handler is the service's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	hs := &http.Server{Handler: s.mux}
	s.hsMu.Lock()
	s.hs = hs
	s.hsMu.Unlock()
	err := hs.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown stops the server gracefully: stop accepting, give in-flight
// streams DrainTimeout to finish, then cancel their contexts — which
// aborts the cursors, releasing grants and temporaries — and wait for
// the handlers to unwind. ctx bounds the whole process.
func (s *Server) Shutdown(ctx context.Context) error {
	drain, cancelDrain := context.WithTimeout(ctx, s.cfg.DrainTimeout)
	defer cancelDrain()

	s.hsMu.Lock()
	hs := s.hs
	s.hsMu.Unlock()

	done := make(chan error, 1)
	if hs != nil {
		//lint:allow wlvet/ctxparam graceful drain must outlive the request contexts being drained; DrainTimeout bounds it below
		go func() { done <- hs.Shutdown(context.Background()) }()
	} else {
		// Handler-only use (tests): nothing accepts connections; just
		// wait for in-flight requests below.
		go func() {
			for s.inFlight.Load() > 0 {
				select {
				case <-drain.Done():
					done <- nil
					return
				case <-time.After(time.Millisecond):
				}
			}
			done <- nil
		}()
	}

	var err error
	select {
	case err = <-done: // drained in time
	case <-drain.Done():
		s.cancelBase() // abort the stragglers' queries
		err = <-done
	}
	s.cancelBase()
	s.closeSessions()
	if ctx.Err() != nil && err == nil {
		err = ctx.Err()
	}
	return err
}

func (s *Server) closeSessions() {
	s.mu.Lock()
	states := make([]*tenantState, 0, len(s.byName))
	for _, ts := range s.byName {
		states = append(states, ts)
	}
	s.mu.Unlock()
	for _, ts := range states {
		// Only sessions that were actually opened.
		ts.once.Do(func() {})
		if ts.sess != nil {
			ts.sess.Close()
		}
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// tenantFor authenticates the request. With configured tenants, a
// bearer token selects its tenant and the TenantHeader header selects a
// token-less (open) tenant; anything else is 401. In open mode the
// TenantHeader value (default DefaultTenant) names an auto-provisioned
// tenant.
func (s *Server) tenantFor(r *http.Request) (*tenantState, error) {
	if auth := r.Header.Get("Authorization"); auth != "" {
		token, ok := strings.CutPrefix(auth, "Bearer ")
		if !ok {
			return nil, errors.New("unsupported Authorization scheme")
		}
		s.mu.Lock()
		ts := s.byToken[token]
		s.mu.Unlock()
		if ts == nil {
			return nil, errors.New("unknown token")
		}
		return ts, nil
	}
	name := r.Header.Get(TenantHeader)
	if s.open {
		if name == "" {
			name = DefaultTenant
		}
		s.mu.Lock()
		ts, ok := s.byName[name]
		if !ok {
			ts = &tenantState{cfg: Tenant{Name: name, Weight: 1}}
			s.byName[name] = ts
		}
		s.mu.Unlock()
		return ts, nil
	}
	if name == "" {
		return nil, errors.New("missing credentials")
	}
	s.mu.Lock()
	ts := s.byName[name]
	s.mu.Unlock()
	if ts == nil || ts.cfg.Token != "" {
		return nil, errors.New("tenant requires a token")
	}
	return ts, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// parseRequest authenticates and parses a query/explain request,
// answering the error responses itself. The returned query is bound to
// the tenant's engine session.
func (s *Server) parseRequest(w http.ResponseWriter, r *http.Request) (*tenantState, EngineQuery, bool) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return nil, nil, false
	}
	ts, err := s.tenantFor(r)
	if err != nil {
		writeError(w, http.StatusUnauthorized, "unauthorized: %v", err)
		return nil, nil, false
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return nil, nil, false
	}
	if strings.TrimSpace(req.Plan) == "" {
		writeError(w, http.StatusBadRequest, "empty plan")
		return nil, nil, false
	}
	sess, err := ts.session(s.eng)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "session: %v", err)
		return nil, nil, false
	}
	q, err := sess.Query(req.Plan)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad plan: %v", err)
		return nil, nil, false
	}
	return ts, q, true
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	_, q, ok := s.parseRequest(w, r)
	if !ok {
		return
	}
	ex, err := q.Explain()
	if err != nil {
		writeError(w, http.StatusBadRequest, "explain: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, ExplainResponse{Explain: ex})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	ts, q, ok := s.parseRequest(w, r)
	if !ok {
		return
	}
	name := ts.cfg.Name
	tc := s.met.tenant(name)
	tc.queries.Add(1)
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	// The query context dies with the client connection or with
	// shutdown's second phase, whichever first; either way the cursor
	// aborts and its grant and temporaries release.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.base, cancel)
	defer stop()

	t0 := time.Now()
	if err := s.gate.Enter(ctx, name, ts.cfg.Weight); err != nil {
		tc.cancelled.Add(1)
		writeError(w, http.StatusServiceUnavailable, "admission: %v", err)
		return
	}
	tc.gateWait.Add(int64(time.Since(t0)))
	t1 := time.Now()
	rows, err := q.Rows(ctx)
	s.gate.Exit()
	if err != nil {
		switch {
		case errors.Is(err, broker.ErrAdmission):
			writeError(w, http.StatusServiceUnavailable, "admission: %v", err)
		case ctx.Err() != nil:
			tc.cancelled.Add(1)
			writeError(w, http.StatusServiceUnavailable, "cancelled: %v", err)
		default:
			tc.errored.Add(1)
			writeError(w, http.StatusInternalServerError, "query: %v", err)
		}
		return
	}
	tc.admitWait.Add(int64(time.Since(t1)))
	tc.active.Add(1)
	defer tc.active.Add(-1)
	defer rows.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc := json.NewEncoder(w)

	rs := rows.RecordSize()
	attrs := 0
	if rs%record.AttrSize == 0 {
		attrs = rs / record.AttrSize
	}
	if err := enc.Encode(Line{Header: &Header{RecordSize: rs, Attrs: attrs}}); err != nil {
		tc.cancelled.Add(1)
		return
	}
	flush()

	var n int64
	row := make([]uint64, attrs)
	for rows.Next() {
		rec := rows.Record()
		var werr error
		if attrs > 0 {
			for i := range row {
				row[i] = binary.LittleEndian.Uint64(rec[i*record.AttrSize:])
			}
			werr = enc.Encode(Line{Row: row})
		} else {
			werr = enc.Encode(Line{Raw: rec})
		}
		if werr != nil {
			// Client gone: abort the cursor and unwind. rows.Close (and
			// cancel) release the grant and destroy temporaries.
			cancel()
			tc.rows.Add(n)
			tc.bytes.Add(n * int64(rs))
			tc.cancelled.Add(1)
			s.logf("query tenant=%s rows=%d disconnect", name, n)
			return
		}
		n++
		if n%int64(s.cfg.FlushRows) == 0 {
			flush()
		}
	}
	tc.rows.Add(n)
	tc.bytes.Add(n * int64(rs))
	if err := rows.Err(); err != nil {
		if ctx.Err() != nil {
			tc.cancelled.Add(1)
		} else {
			tc.errored.Add(1)
		}
		enc.Encode(Line{Error: err.Error()})
		flush()
		s.logf("query tenant=%s rows=%d err=%v", name, n, err)
		return
	}
	tc.completed.Add(1)
	enc.Encode(Line{End: &End{Rows: n, Explain: rows.Explain()}})
	flush()
	s.logf("query tenant=%s rows=%d ok", name, n)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if _, err := s.tenantFor(r); err != nil {
		writeError(w, http.StatusUnauthorized, "unauthorized: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, Metrics{
		UptimeMs:  int64(time.Since(s.start) / time.Millisecond),
		InFlight:  s.inFlight.Load(),
		GateDepth: s.gate.Depth(),
		Broker:    s.eng.BrokerStats(),
		Device:    deviceMetrics(s.eng.DeviceStats()),
		Tenants:   s.met.snapshot(s.gate.QueueDepths(), s.tenantWeights()),
	})
}

// tenantWeights snapshots every tenant's configured weight under s.mu,
// so the metrics registry can render without calling back into the
// server — snapshot under m.mu must see plain data, not a closure that
// takes s.mu (a lock edge hidden behind an indirect call).
func (s *Server) tenantWeights() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	weights := make(map[string]int, len(s.byName))
	for name, ts := range s.byName {
		weights[name] = ts.cfg.Weight
	}
	return weights
}
