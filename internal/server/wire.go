package server

import "wlpm/internal/exec"

// Wire types of the /v1 protocol. POST /v1/query and /v1/explain take a
// QueryRequest; /v1/explain answers with one ExplainResponse document,
// while /v1/query streams NDJSON — one Line per text line, in order:
//
//	{"header":{...}}        exactly once, before any row
//	{"row":[1,2,...]}       one per record: the 8-byte attrs as uint64s
//	{"raw":"base64..."}     instead of "row" when the record size is not
//	                        a multiple of the attribute size
//	{"end":{...}}           terminal on success (row count + explain)
//	{"error":"..."}         terminal on failure
//
// Records are little-endian fixed-size attribute arrays, so the row form
// reconstructs the record bytes exactly; remote results are therefore
// byte-identical to in-process execution.

// QueryRequest is the body of POST /v1/query and POST /v1/explain.
type QueryRequest struct {
	// Plan is the query in the plan DSL (see cmd/wlquery).
	Plan string `json:"plan"`
}

// Line is one NDJSON line of a query response stream. Exactly one of
// the fields is set.
type Line struct {
	Header *Header  `json:"header,omitempty"`
	Row    []uint64 `json:"row,omitempty"`
	Raw    []byte   `json:"raw,omitempty"`
	End    *End     `json:"end,omitempty"`
	Error  string   `json:"error,omitempty"`
}

// Header opens a query stream.
type Header struct {
	RecordSize int `json:"record_size"`
	// Attrs is RecordSize / 8 when records are attribute arrays (rows
	// stream as "row" lines), 0 when they stream as "raw" lines.
	Attrs int `json:"attrs"`
}

// End closes a successful query stream.
type End struct {
	Rows    int64         `json:"rows"`
	Explain *exec.Explain `json:"explain,omitempty"`
}

// ExplainResponse is the body of a POST /v1/explain answer.
type ExplainResponse struct {
	Explain *exec.Explain `json:"explain"`
}

// ErrorResponse is the JSON body of non-streaming error answers.
type ErrorResponse struct {
	Error string `json:"error"`
}
