package dynarray

import (
	"testing"

	"wlpm/internal/pmem"
	"wlpm/internal/record"
)

// The defining behaviour of this layer: capacity doubling copies every
// live byte device-to-device, so total writes approach 2–3× the payload
// (Σ 2^i copies) instead of blocked memory's exactly-1×.
func TestDoublingWriteAmplification(t *testing.T) {
	dev := pmem.MustOpen(pmem.Config{Capacity: 64 << 20})
	f := New(dev, 1024)
	c, err := f.Create("c", record.Size)
	if err != nil {
		t.Fatal(err)
	}
	const n = 12800 // 1 MiB payload
	dev.ResetStats()
	for i := 0; i < n; i++ {
		if err := c.Append(record.New(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	st := dev.Stats()
	payload := uint64(n * record.Size / 64)
	if st.Writes < payload*15/10 {
		t.Errorf("writes %d lines: expected ≥1.5× payload %d from doubling copies", st.Writes, payload)
	}
	if st.Reads == 0 {
		t.Error("doubling must read the old region back; saw zero reads")
	}
}

// Growth must free the old region: the allocator's live footprint after
// many appends is the final capacity only.
func TestGrowthFreesOldRegions(t *testing.T) {
	dev := pmem.MustOpen(pmem.Config{Capacity: 64 << 20})
	f := New(dev, 1024)
	c, err := f.Create("c", record.Size)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12800; i++ {
		if err := c.Append(record.New(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if got := f.alloc.Allocations(); got != 1 {
		t.Errorf("%d live allocations after growth, want 1 (old regions leaked)", got)
	}
	if f.alloc.Peak() <= f.alloc.InUse() {
		t.Error("peak should exceed steady state (old+new coexist during a copy)")
	}
}

func TestOutOfOrderWriteRejected(t *testing.T) {
	dev := pmem.MustOpen(pmem.Config{Capacity: 1 << 20})
	f := New(dev, 1024)
	s := &store{f: f}
	if err := s.WriteBlock(3, make([]byte, 1024)); err == nil {
		t.Error("out-of-order block write accepted")
	}
}
