// Package dynarray implements the paper's dynamic-array persistence layer
// (§3.2, "Dynamic arrays"): collections are C++-vector-style contiguous
// regions that double in capacity when full, copying every live byte from
// the old region to the new one. On persistent memory the copy is real
// device traffic, which is exactly the write amplification the paper
// measures for this implementation alternative.
package dynarray

import (
	"fmt"
	"sync"

	"wlpm/internal/pmem"
	"wlpm/internal/storage"
)

// Factory creates dynamic-array collections. Create and Destroy are safe
// for concurrent use; individual collections remain single-owner.
type Factory struct {
	alloc     *pmem.Allocator
	blockSize int

	mu    sync.Mutex
	names map[string]bool
}

// New returns a factory on dev with the given block size (0 for the
// default). The initial capacity of each collection is one block.
func New(dev *pmem.Device, blockSize int) *Factory {
	if blockSize <= 0 {
		blockSize = storage.DefaultBlockSize
	}
	return &Factory{
		alloc:     pmem.NewAllocator(dev),
		blockSize: blockSize,
		names:     make(map[string]bool),
	}
}

// Name implements storage.Factory.
func (f *Factory) Name() string { return "dynarray" }

// Device implements storage.Factory.
func (f *Factory) Device() *pmem.Device { return f.alloc.Device() }

// BlockSize implements storage.Factory.
func (f *Factory) BlockSize() int { return f.blockSize }

// Create implements storage.Factory.
func (f *Factory) Create(name string, recordSize int) (storage.Collection, error) {
	if err := storage.ValidateCreate(name, recordSize); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.names[name] {
		return nil, fmt.Errorf("dynarray: collection %q already exists", name)
	}
	f.names[name] = true
	return storage.NewBaseCollection(name, recordSize, f.blockSize, &store{f: f, name: name}), nil
}

// store is one contiguous, doubling region on the device.
type store struct {
	f    *Factory
	name string
	off  int64 // region device offset
	cp   int64 // region capacity in bytes (0 = unallocated)
	size int64 // bytes written
}

func (s *store) WriteBlock(seq int, data []byte) error {
	want := int64(seq) * int64(s.f.blockSize)
	if want != s.size {
		return fmt.Errorf("dynarray: out-of-order block write %d (size %d)", seq, s.size)
	}
	if err := s.ensure(s.size + int64(len(data))); err != nil {
		return err
	}
	if err := s.f.alloc.Device().WriteAt(data, s.off+s.size); err != nil {
		return err
	}
	s.size += int64(len(data))
	return nil
}

// ensure grows the region to hold at least need bytes, doubling capacity
// and copying the live prefix device-to-device like a vector reallocation.
func (s *store) ensure(need int64) error {
	if need <= s.cp {
		return nil
	}
	newCap := s.cp
	if newCap == 0 {
		newCap = int64(s.f.blockSize)
	}
	for newCap < need {
		newCap *= 2
	}
	newOff, err := s.f.alloc.Alloc(newCap)
	if err != nil {
		return err
	}
	if s.cp > 0 {
		// The element copy: read every live byte from the old region and
		// write it to the new one, in block-sized chunks.
		dev := s.f.alloc.Device()
		buf := make([]byte, s.f.blockSize)
		for pos := int64(0); pos < s.size; pos += int64(len(buf)) {
			n := s.size - pos
			if n > int64(len(buf)) {
				n = int64(len(buf))
			}
			if err := dev.ReadAt(buf[:n], s.off+pos); err != nil {
				return err
			}
			if err := dev.WriteAt(buf[:n], newOff+pos); err != nil {
				return err
			}
		}
		if err := s.f.alloc.Free(s.off); err != nil {
			return err
		}
	}
	s.off, s.cp = newOff, newCap
	return nil
}

func (s *store) ReadBlock(off int64, dst []byte) error {
	if off+int64(len(dst)) > s.size {
		return fmt.Errorf("dynarray: read [%d,+%d) past size %d", off, len(dst), s.size)
	}
	return s.f.alloc.Device().ReadAt(dst, s.off+off)
}

func (s *store) Truncate() error {
	if s.cp > 0 {
		if err := s.f.alloc.Free(s.off); err != nil {
			return err
		}
	}
	s.off, s.cp, s.size = 0, 0, 0
	return nil
}

// Destroy frees the region and releases the collection's name for reuse.
func (s *store) Destroy() error {
	s.f.mu.Lock()
	delete(s.f.names, s.name)
	s.f.mu.Unlock()
	return s.Truncate()
}
