package storage_test

import (
	"io"
	"testing"

	"wlpm/internal/record"
	"wlpm/internal/storage"
)

func sliceFixture(t *testing.T) storage.Collection {
	t.Helper()
	f := newFactory(t, "blocked")
	c, err := f.Create("base", record.Size)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := c.Append(record.New(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func keysOf(t *testing.T, it storage.Iterator) []uint64 {
	t.Helper()
	defer it.Close()
	var keys []uint64
	for {
		rec, err := it.Next()
		if err == io.EOF {
			return keys
		}
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, record.Key(rec))
	}
}

func TestSliceBounds(t *testing.T) {
	c := sliceFixture(t)
	v := storage.Slice(c, 10, 20)
	if v.Len() != 10 {
		t.Fatalf("Len = %d, want 10", v.Len())
	}
	keys := keysOf(t, v.Scan())
	if len(keys) != 10 || keys[0] != 10 || keys[9] != 19 {
		t.Fatalf("slice keys %v", keys)
	}
}

func TestSliceClamping(t *testing.T) {
	c := sliceFixture(t)
	if v := storage.Slice(c, -5, 200); v.Len() != 100 {
		t.Errorf("clamped slice Len = %d, want 100", v.Len())
	}
	if v := storage.Slice(c, 50, 10); v.Len() != 0 {
		t.Errorf("inverted slice Len = %d, want 0", v.Len())
	}
	empty := storage.Slice(c, 30, 30)
	if keys := keysOf(t, empty.Scan()); len(keys) != 0 {
		t.Errorf("empty slice yielded %v", keys)
	}
}

func TestSliceScanFrom(t *testing.T) {
	c := sliceFixture(t)
	v := storage.Slice(c, 10, 90)
	keys := keysOf(t, v.ScanFrom(5))
	if len(keys) != 75 || keys[0] != 15 {
		t.Fatalf("ScanFrom(5): %d keys, first %d", len(keys), keys[0])
	}
	if keys := keysOf(t, v.ScanFrom(1000)); len(keys) != 0 {
		t.Errorf("ScanFrom past end yielded %v", keys)
	}
}

func TestSliceReadOnly(t *testing.T) {
	c := sliceFixture(t)
	v := storage.Slice(c, 0, 10)
	if err := v.Append(record.New(1)); err == nil {
		t.Error("Append on view succeeded")
	}
	if err := v.Truncate(); err == nil {
		t.Error("Truncate on view succeeded")
	}
	if err := v.Destroy(); err == nil {
		t.Error("Destroy on view succeeded")
	}
	if err := v.Close(); err != nil {
		t.Errorf("Close on view: %v", err)
	}
	if v.RecordSize() != record.Size {
		t.Errorf("RecordSize = %d", v.RecordSize())
	}
	if v.Name() == "" {
		t.Error("view has no name")
	}
}

// A suffix view must not read the skipped prefix from the device.
func TestSliceSkipsPrefixReads(t *testing.T) {
	f := newFactory(t, "blocked")
	c, err := f.Create("base", record.Size)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if err := c.Append(record.New(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	dev := f.Device()

	dev.ResetStats()
	keysOf(t, c.Scan())
	full := dev.Stats().Reads

	dev.ResetStats()
	keysOf(t, storage.Slice(c, 9000, 10000).Scan())
	suffix := dev.Stats().Reads

	if suffix > full/5 {
		t.Errorf("10%% suffix read %d lines vs %d for full scan — prefix not skipped", suffix, full)
	}
}
