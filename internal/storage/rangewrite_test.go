package storage_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"wlpm/internal/record"
	"wlpm/internal/storage"
)

// fillRecs builds n deterministic records keyed start..start+n.
func fillRecs(start, n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		rec := make([]byte, record.Size)
		record.Fill(rec, uint64(start+i))
		out[i] = rec
	}
	return out
}

func appendAll(t *testing.T, c interface{ Append([]byte) error }, recs [][]byte) {
	t.Helper()
	for _, r := range recs {
		if err := c.Append(r); err != nil {
			t.Fatal(err)
		}
	}
}

// openSession pre-appends pre records (leaving a DRAM tail unless the
// byte count is block-aligned) and opens a range-append session.
func openSession(t *testing.T, pre int, counts []int) (storage.Factory, storage.Collection, *storage.RangeAppend) {
	t.Helper()
	f := newFactory(t, "blocked")
	c, err := f.Create("ra", record.Size)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, c, fillRecs(0, pre))
	ra, ok := storage.AsRangeAppender(c)
	if !ok {
		t.Fatal("blocked collection does not expose RangeAppender")
	}
	session, err := ra.AppendRanges(counts)
	if err != nil {
		t.Fatal(err)
	}
	return f, c, session
}

// runWriters drives each writer's range concurrently and returns the
// first error (writers are expected to defer Abort themselves here).
func runWriters(session *storage.RangeAppend, counts []int, recs [][]byte) error {
	var wg sync.WaitGroup
	errs := make([]error, len(counts))
	start := 0
	for i, n := range counts {
		lo := start
		start += n
		wg.Add(1)
		go func(i, lo, n int) {
			defer wg.Done()
			w := session.Writer(i)
			defer w.Abort()
			for _, r := range recs[lo : lo+n] {
				if err := w.Append(r); err != nil {
					errs[i] = err
					return
				}
			}
			errs[i] = w.Finish()
		}(i, lo, n)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// TestRangeAppendMatchesSerial checks the core identity: a committed
// range-append session leaves the collection byte-for-byte equal to the
// same records appended serially — including a pre-existing DRAM tail
// folded into the first block — with *exactly* the same cacheline write
// count on the device.
func TestRangeAppendMatchesSerial(t *testing.T) {
	// 7 pre-records = 560 bytes: a partial tail below one 1024-byte block.
	const pre, n = 7, 500
	for _, counts := range [][]int{
		{500},
		{180, 200, 120},
		{0, 3, 0, 497, 0}, // empty and tiny ranges interleaved
		{125, 125, 125, 125},
	} {
		t.Run(fmt.Sprintf("%v", counts), func(t *testing.T) {
			recs := fillRecs(1000, n)

			serialF := newFactory(t, "blocked")
			serial, err := serialF.Create("serial", record.Size)
			if err != nil {
				t.Fatal(err)
			}
			appendAll(t, serial, fillRecs(0, pre))
			serialF.Device().ResetStats()
			appendAll(t, serial, recs)
			serialWrites := serialF.Device().Stats().Writes

			f, c, session := openSession(t, pre, counts)
			f.Device().ResetStats()
			if err := runWriters(session, counts, recs); err != nil {
				t.Fatal(err)
			}
			if err := session.Commit(); err != nil {
				t.Fatal(err)
			}
			if got := f.Device().Stats().Writes; got != serialWrites {
				t.Errorf("session wrote %d cachelines, serial appends %d", got, serialWrites)
			}
			if c.Len() != pre+n {
				t.Fatalf("Len = %d, want %d", c.Len(), pre+n)
			}
			want, err := storage.ReadAll(serial)
			if err != nil {
				t.Fatal(err)
			}
			got, err := storage.ReadAll(c)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if !bytes.Equal(want[i], got[i]) {
					t.Fatalf("record %d differs after range append", i)
				}
			}
			// The collection must remain appendable past the session.
			if err := c.Append(want[0]); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRangeAppendRollback checks a rolled-back session leaves no trace:
// length, contents and future appends behave as if it never opened.
func TestRangeAppendRollback(t *testing.T) {
	const pre = 40
	_, c, session := openSession(t, pre, []int{30, 30})
	w := session.Writer(0)
	appendAll(t, &writerShim{w}, fillRecs(500, 10)) // partial write, then abandon
	w.Abort()
	session.Writer(1).Abort()
	if err := session.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := session.Rollback(); err != nil { // idempotent
		t.Fatal(err)
	}
	if c.Len() != pre {
		t.Fatalf("Len = %d after rollback, want %d", c.Len(), pre)
	}
	appendAll(t, c, fillRecs(2000, 60))
	recs, err := storage.ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != pre+60 {
		t.Fatalf("got %d records, want %d", len(recs), pre+60)
	}
	for i, r := range recs[:pre] {
		if record.Key(r) != uint64(i) {
			t.Fatalf("pre-record %d has key %d", i, record.Key(r))
		}
	}
}

// writerShim adapts a RangeWriter to the Append-only surface appendAll
// uses.
type writerShim struct{ w *storage.RangeWriter }

func (s *writerShim) Append(rec []byte) error { return s.w.Append(rec) }

// TestRangeAppendUnsupportedBackends: every backend either hides the
// capability or reports ErrRangeAppendUnsupported; only blocked serves
// sessions.
func TestRangeAppendUnsupportedBackends(t *testing.T) {
	forEachBackend(t, func(t *testing.T, f storage.Factory) {
		c, err := f.Create("cap", record.Size)
		if err != nil {
			t.Fatal(err)
		}
		ra, ok := storage.AsRangeAppender(c)
		if !ok {
			if f.Name() == "blocked" {
				t.Fatal("blocked backend lost the RangeAppender capability")
			}
			return
		}
		session, err := ra.AppendRanges([]int{1})
		if f.Name() == "blocked" {
			if err != nil {
				t.Fatalf("blocked backend refused a session: %v", err)
			}
			session.Rollback() //nolint:errcheck
			return
		}
		if !errors.Is(err, storage.ErrRangeAppendUnsupported) {
			t.Fatalf("backend %q: err = %v, want ErrRangeAppendUnsupported", f.Name(), err)
		}
	})
}

// TestRangeWriterShortCount: finishing a writer before its declared
// count fails and poisons the session.
func TestRangeWriterShortCount(t *testing.T) {
	_, c, session := openSession(t, 0, []int{20, 20})
	w := session.Writer(0)
	appendAll(t, &writerShim{w}, fillRecs(0, 5))
	if err := w.Finish(); err == nil {
		t.Fatal("short Finish succeeded")
	}
	if err := session.Commit(); err == nil {
		t.Fatal("commit of unfinished session succeeded")
	}
	if err := session.Rollback(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after rollback", c.Len())
	}
}

// TestRangeAppendAbortPoisons: an aborted writer's successor — whose
// first block depends on the aborted range's trailing bytes — fails
// rather than blocking or committing a hole.
func TestRangeAppendAbortPoisons(t *testing.T) {
	counts := []int{25, 25} // 25·80 = 2000 bytes: range 1 starts mid-block
	_, _, session := openSession(t, 0, counts)
	session.Writer(0).Abort()
	w := session.Writer(1)
	var failed error
	for _, r := range fillRecs(100, 25) {
		if failed = w.Append(r); failed != nil {
			break
		}
	}
	if failed == nil {
		failed = w.Finish()
	}
	if failed == nil {
		t.Fatal("successor of aborted writer finished cleanly")
	}
	if err := session.Rollback(); err != nil {
		t.Fatal(err)
	}
}
