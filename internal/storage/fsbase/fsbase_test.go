package fsbase

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"wlpm/internal/pmem"
)

func byteFS(t *testing.T) *FS {
	t.Helper()
	dev := pmem.MustOpen(pmem.Config{Capacity: 32 << 20})
	fs, err := Format(dev, Profile{Name: "test-byte", Granularity: 1, SizeUpdateEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func sectorFS(t *testing.T) *FS {
	t.Helper()
	dev := pmem.MustOpen(pmem.Config{Capacity: 32 << 20})
	fs, err := Format(dev, Profile{Name: "test-sector", Granularity: 512, InodeWriteWhole: true})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestFormatValidation(t *testing.T) {
	tiny := pmem.MustOpen(pmem.Config{Capacity: 1 << 10})
	if _, err := Format(tiny, Profile{Name: "t", Granularity: 1}); err == nil {
		t.Error("Format on a too-small device succeeded")
	}
	dev := pmem.MustOpen(pmem.Config{Capacity: 32 << 20})
	if _, err := Format(dev, Profile{Name: "t", Granularity: 0}); err == nil {
		t.Error("zero granularity accepted")
	}
	if _, err := Format(dev, Profile{Name: "t", Granularity: 1, MinExtent: 1 << 20, MaxExtent: 1 << 10}); err == nil {
		t.Error("MinExtent > MaxExtent accepted")
	}
}

func TestCreateRemove(t *testing.T) {
	for _, mk := range []func(*testing.T) *FS{byteFS, sectorFS} {
		fs := mk(t)
		f, err := fs.Create("a")
		if err != nil {
			t.Fatal(err)
		}
		if f.Name() != "a" || f.Size() != 0 {
			t.Fatalf("fresh file: name %q size %d", f.Name(), f.Size())
		}
		if _, err := fs.Create("a"); err == nil {
			t.Error("duplicate create succeeded")
		}
		if _, err := fs.Create(""); err == nil {
			t.Error("empty name accepted")
		}
		if err := fs.Remove("a"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Remove("a"); err == nil {
			t.Error("double remove succeeded")
		}
		if _, err := fs.Create("a"); err != nil {
			t.Fatalf("recreate after remove: %v", err)
		}
	}
}

func TestAppendReadBack(t *testing.T) {
	for _, mk := range []func(*testing.T) *FS{byteFS, sectorFS} {
		fs := mk(t)
		f, err := fs.Create("f")
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		var want []byte
		// Appends of awkward sizes crossing sector and extent boundaries.
		for _, n := range []int{1, 511, 512, 513, 1024, 7, 80, 4096, 100_000} {
			chunk := make([]byte, n)
			rng.Read(chunk)
			want = append(want, chunk...)
			if err := f.Append(chunk); err != nil {
				t.Fatalf("%s: append %d: %v", fs.Profile().Name, n, err)
			}
		}
		if f.Size() != int64(len(want)) {
			t.Fatalf("size %d, want %d", f.Size(), len(want))
		}
		got := make([]byte, len(want))
		if err := f.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: read-back mismatch", fs.Profile().Name)
		}
		// Random interior reads.
		for i := 0; i < 50; i++ {
			off := rng.Intn(len(want) - 1)
			n := rng.Intn(len(want)-off) + 1
			buf := make([]byte, n)
			if err := f.ReadAt(buf, int64(off)); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, want[off:off+n]) {
				t.Fatalf("%s: interior read [%d,+%d) mismatch", fs.Profile().Name, off, n)
			}
		}
	}
}

func TestReadPastEnd(t *testing.T) {
	fs := byteFS(t)
	f, _ := fs.Create("f")
	if err := f.Append(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := f.ReadAt(make([]byte, 10), 95); err == nil {
		t.Error("read past size succeeded")
	}
	if err := f.ReadAt(make([]byte, 1), -1); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestTruncateFreesAndReuses(t *testing.T) {
	for _, mk := range []func(*testing.T) *FS{byteFS, sectorFS} {
		fs := mk(t)
		f, _ := fs.Create("f")
		if err := f.Append(make([]byte, 500_000)); err != nil {
			t.Fatal(err)
		}
		if err := f.Truncate(); err != nil {
			t.Fatal(err)
		}
		if f.Size() != 0 {
			t.Fatalf("size after truncate = %d", f.Size())
		}
		if err := f.Append([]byte("fresh")); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 5)
		if err := f.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if string(got) != "fresh" {
			t.Fatalf("after truncate+append: %q", got)
		}
	}
}

func TestExtentDoublingGrowth(t *testing.T) {
	fs := byteFS(t)
	f, _ := fs.Create("f")
	// Grow past several extent doublings (MinExtent is 8 KiB).
	if err := f.Append(make([]byte, 200_000)); err != nil {
		t.Fatal(err)
	}
	ino := &fs.inodes[f.idx]
	if len(ino.extents) < 3 {
		t.Fatalf("expected several extents, got %d", len(ino.extents))
	}
	for i := 1; i < len(ino.extents); i++ {
		if ino.extents[i].size < ino.extents[i-1].size {
			t.Fatalf("extent %d smaller than predecessor", i)
		}
	}
}

func TestIndirectExtents(t *testing.T) {
	dev := pmem.MustOpen(pmem.Config{Capacity: 64 << 20})
	// Tiny extents force the file beyond DirectExtents quickly.
	fs, err := Format(dev, Profile{Name: "t", Granularity: 1, MinExtent: 4096, MaxExtent: 4096})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Create("big")
	payload := make([]byte, 4096)
	for i := 0; i < DirectExtents+10; i++ {
		for j := range payload {
			payload[j] = byte(i)
		}
		if err := f.Append(payload); err != nil {
			t.Fatalf("append extent %d: %v", i, err)
		}
	}
	if got := len(fs.inodes[f.idx].extents); got <= DirectExtents {
		t.Fatalf("file has %d extents, expected indirect spill", got)
	}
	// Read back across the direct/indirect boundary.
	buf := make([]byte, 4096)
	for _, i := range []int{0, DirectExtents - 1, DirectExtents, DirectExtents + 9} {
		if err := f.ReadAt(buf, int64(i)*4096); err != nil {
			t.Fatalf("read extent %d: %v", i, err)
		}
		if buf[0] != byte(i) || buf[4095] != byte(i) {
			t.Fatalf("extent %d content corrupt", i)
		}
	}
}

func TestInodeExhaustion(t *testing.T) {
	fs := byteFS(t)
	for i := 0; i < NInodes; i++ {
		if _, err := fs.Create(string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260))); err != nil {
			t.Fatalf("create #%d: %v", i, err)
		}
	}
	if _, err := fs.Create("onemore"); err == nil {
		t.Error("created more files than inodes")
	}
}

func TestSectorGranularityCharging(t *testing.T) {
	fs := sectorFS(t)
	dev := fs.Device()
	f, _ := fs.Create("f")
	dev.ResetStats()
	// A one-byte append must cost a whole 512-byte sector write (8 lines).
	if err := f.Append([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if w := dev.Stats().Writes; w < 8 {
		t.Errorf("1-byte sector append wrote %d lines, want ≥ 8 (whole sector)", w)
	}
	dev.ResetStats()
	// A one-byte read costs a whole sector read.
	if err := f.ReadAt(make([]byte, 1), 0); err != nil {
		t.Fatal(err)
	}
	if r := dev.Stats().Reads; r < 8 {
		t.Errorf("1-byte sector read cost %d lines, want ≥ 8", r)
	}
}

func TestByteGranularityCharging(t *testing.T) {
	fs := byteFS(t)
	dev := fs.Device()
	f, _ := fs.Create("f")
	dev.ResetStats()
	if err := f.Append([]byte{1}); err != nil {
		t.Fatal(err)
	}
	// Byte-addressable: 1 data line + 1 inode size line.
	if w := dev.Stats().Writes; w > 3 {
		t.Errorf("1-byte pmfs append wrote %d lines, want ≤ 3", w)
	}
}

func TestCallOverheadCharged(t *testing.T) {
	dev := pmem.MustOpen(pmem.Config{Capacity: 32 << 20})
	fs, err := Format(dev, Profile{Name: "t", Granularity: 1, CallOverhead: 100 * time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Create("f")
	base := dev.Stats().SoftTime
	if err := f.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.ReadAt(make([]byte, 1), 0); err != nil {
		t.Fatal(err)
	}
	if got := dev.Stats().SoftTime - base; got != 200*time.Nanosecond {
		t.Errorf("software time for two calls = %v, want 200ns", got)
	}
}

// Property: arbitrary append sequences round-trip on both granularities.
func TestQuickFSRoundTrip(t *testing.T) {
	f := func(seed int64, sector bool) bool {
		var fs *FS
		dev := pmem.MustOpen(pmem.Config{Capacity: 16 << 20})
		prof := Profile{Name: "q", Granularity: 1}
		if sector {
			prof = Profile{Name: "q", Granularity: 512, InodeWriteWhole: true}
		}
		fs, err := Format(dev, prof)
		if err != nil {
			return false
		}
		file, err := fs.Create("f")
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		var want []byte
		for i := 0; i < 20; i++ {
			chunk := make([]byte, rng.Intn(3000)+1)
			rng.Read(chunk)
			want = append(want, chunk...)
			if err := file.Append(chunk); err != nil {
				return false
			}
		}
		got := make([]byte, len(want))
		if err := file.ReadAt(got, 0); err != nil {
			return false
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
