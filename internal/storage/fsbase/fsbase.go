// Package fsbase implements the miniature filesystem shared by the two
// filesystem-flavoured persistence layers of the paper (§3.2): the RAM
// disk (block-granularity access, 512-byte sectors) and the PMFS-like
// byte-addressable filesystem. A Profile selects the access granularity,
// metadata write granularity and software-path call overhead; everything
// else — superblock, inode table, extent allocation, file read/write — is
// common.
//
// On-device layout:
//
//	[0, SuperblockSize)            superblock
//	[SuperblockSize, dataOff)      inode table (NInodes × InodeSize)
//	[dataOff, capacity)            data area, allocated in extents
//
// Files are extent lists: up to DirectExtents extents live in the inode; a
// single indirect extent block extends that for large files. Extent sizes
// double per file from Profile.MinExtent up to Profile.MaxExtent, the
// usual filesystem-preallocation growth policy.
package fsbase

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"wlpm/internal/pmem"
)

// Fixed layout constants.
const (
	SuperblockSize = 512
	InodeSize      = 512
	NInodes        = 512
	DirectExtents  = 24
	// IndirectCap is the number of extents in the single indirect block.
	IndirectCap = 256

	magic = 0x574c504d_46530001 // "WLPMFS" v1
)

// Profile captures how a concrete filesystem flavour touches the device.
type Profile struct {
	// Name of the flavour ("ramdisk", "pmfs").
	Name string
	// Granularity is the unit of data I/O in bytes: 512 for the sector
	// RAM disk, 1 for byte-addressable PMFS.
	Granularity int
	// CallOverhead is software-path time charged per filesystem call
	// (syscall and filesystem code), via pmem.Device.ChargeSoftware.
	CallOverhead time.Duration
	// InodeWriteWhole makes every inode update persist the entire inode
	// (sector-granularity metadata, RAM disk); otherwise only the changed
	// fields are written (byte-granularity metadata, PMFS).
	InodeWriteWhole bool
	// SizeUpdateEveryAppend persists the inode size field on every append
	// (PMFS's fine-grained persistence primitives); otherwise size is
	// persisted when extents change and on Sync (block filesystems batch
	// metadata).
	SizeUpdateEveryAppend bool
	// MinExtent and MaxExtent bound the doubling extent-allocation policy.
	MinExtent int64
	MaxExtent int64
}

func (p *Profile) setDefaults() error {
	if p.Granularity <= 0 {
		return fmt.Errorf("fsbase: granularity must be positive")
	}
	if p.MinExtent == 0 {
		p.MinExtent = 8 << 10
	}
	if p.MaxExtent == 0 {
		p.MaxExtent = 16 << 20
	}
	if p.MinExtent > p.MaxExtent {
		return fmt.Errorf("fsbase: MinExtent %d > MaxExtent %d", p.MinExtent, p.MaxExtent)
	}
	return nil
}

type extent struct{ off, size int64 }

type inode struct {
	used     bool
	size     int64
	extents  []extent // direct + indirect, in order
	indirOff int64    // device offset of the indirect block, 0 if none
}

// FS is a formatted filesystem instance. Create and Remove are safe for
// concurrent use (mu guards the inode directory and the name index); file
// data paths are not synchronized — each open file has a single owner, as
// with the other persistence layers.
type FS struct {
	dev     *pmem.Device
	prof    Profile
	alloc   *pmem.Allocator
	dataOff int64

	mu     sync.Mutex
	inodes [NInodes]inode
	byName map[string]int
}

// Format creates a fresh filesystem occupying all of dev.
func Format(dev *pmem.Device, prof Profile) (*FS, error) {
	if err := prof.setDefaults(); err != nil {
		return nil, err
	}
	dataOff := int64(SuperblockSize + NInodes*InodeSize)
	if dev.Capacity() <= dataOff+prof.MinExtent {
		return nil, fmt.Errorf("fsbase: device too small (%d bytes) for filesystem metadata (%d) plus data", dev.Capacity(), dataOff)
	}
	fs := &FS{
		dev:     dev,
		prof:    prof,
		alloc:   pmem.NewAllocatorRange(dev, dataOff, dev.Capacity()),
		byName:  make(map[string]int),
		dataOff: dataOff,
	}
	var sb [SuperblockSize]byte
	binary.LittleEndian.PutUint64(sb[0:], magic)
	binary.LittleEndian.PutUint64(sb[8:], uint64(dev.Capacity()))
	binary.LittleEndian.PutUint64(sb[16:], uint64(NInodes))
	binary.LittleEndian.PutUint64(sb[24:], uint64(dataOff))
	if err := dev.WriteAt(sb[:], 0); err != nil {
		return nil, err
	}
	return fs, nil
}

// Profile reports the flavour configuration.
func (fs *FS) Profile() Profile { return fs.prof }

// Device exposes the underlying device.
func (fs *FS) Device() *pmem.Device { return fs.dev }

func (fs *FS) charge() { fs.dev.ChargeSoftware(fs.prof.CallOverhead) }

// inodeOff is the device offset of inode idx.
func (fs *FS) inodeOff(idx int) int64 {
	return SuperblockSize + int64(idx)*InodeSize
}

// persistInode writes inode metadata according to the flavour's
// granularity. fields selects what changed when fine-grained writes are
// possible; coarse flavours rewrite the whole inode.
func (fs *FS) persistInode(idx int, fields ...inodeField) error {
	ino := &fs.inodes[idx]
	base := fs.inodeOff(idx)
	if fs.prof.InodeWriteWhole {
		var buf [InodeSize]byte
		encodeInode(ino, buf[:])
		if err := fs.dev.WriteAt(buf[:], base); err != nil {
			return err
		}
		// Indirect extent entries live outside the inode sector and must
		// be persisted separately even in whole-inode mode.
		for _, f := range fields {
			if f.kind != fieldExtent || f.i < DirectExtents {
				continue
			}
			var e [16]byte
			binary.LittleEndian.PutUint64(e[:8], uint64(ino.extents[f.i].off))
			binary.LittleEndian.PutUint64(e[8:], uint64(ino.extents[f.i].size))
			if err := fs.dev.WriteAt(e[:], ino.indirOff+int64(f.i-DirectExtents)*16); err != nil {
				return err
			}
		}
		return nil
	}
	var scratch [16]byte
	for _, f := range fields {
		switch f.kind {
		case fieldUsed:
			v := uint64(0)
			if ino.used {
				v = 1
			}
			binary.LittleEndian.PutUint64(scratch[:8], v)
			if err := fs.dev.WriteAt(scratch[:8], base); err != nil {
				return err
			}
		case fieldSize:
			binary.LittleEndian.PutUint64(scratch[:8], uint64(ino.size))
			if err := fs.dev.WriteAt(scratch[:8], base+8); err != nil {
				return err
			}
		case fieldExtent:
			binary.LittleEndian.PutUint64(scratch[:8], uint64(ino.extents[f.i].off))
			binary.LittleEndian.PutUint64(scratch[8:], uint64(ino.extents[f.i].size))
			if f.i < DirectExtents {
				if err := fs.dev.WriteAt(scratch[:16], base+32+int64(f.i)*16); err != nil {
					return err
				}
			} else {
				slot := int64(f.i - DirectExtents)
				if err := fs.dev.WriteAt(scratch[:16], ino.indirOff+slot*16); err != nil {
					return err
				}
			}
		case fieldIndirect:
			binary.LittleEndian.PutUint64(scratch[:8], uint64(ino.indirOff))
			if err := fs.dev.WriteAt(scratch[:8], base+24); err != nil {
				return err
			}
		}
	}
	return nil
}

type inodeFieldKind int

const (
	fieldUsed inodeFieldKind = iota
	fieldSize
	fieldExtent
	fieldIndirect
)

type inodeField struct {
	kind inodeFieldKind
	i    int
}

// encodeInode serializes ino into a full InodeSize buffer (direct extents
// only; indirect extents live in their own block).
func encodeInode(ino *inode, buf []byte) {
	for i := range buf {
		buf[i] = 0
	}
	if ino.used {
		binary.LittleEndian.PutUint64(buf[0:], 1)
	}
	binary.LittleEndian.PutUint64(buf[8:], uint64(ino.size))
	binary.LittleEndian.PutUint64(buf[16:], uint64(len(ino.extents)))
	binary.LittleEndian.PutUint64(buf[24:], uint64(ino.indirOff))
	for i, e := range ino.extents {
		if i >= DirectExtents {
			break
		}
		binary.LittleEndian.PutUint64(buf[32+i*16:], uint64(e.off))
		binary.LittleEndian.PutUint64(buf[32+i*16+8:], uint64(e.size))
	}
}

// Create makes an empty file.
func (fs *FS) Create(name string) (*File, error) {
	fs.charge()
	if name == "" {
		return nil, fmt.Errorf("%s: empty file name", fs.prof.Name)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.byName[name]; ok {
		return nil, fmt.Errorf("%s: file %q exists", fs.prof.Name, name)
	}
	idx := -1
	for i := range fs.inodes {
		if !fs.inodes[i].used {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("%s: out of inodes (%d files)", fs.prof.Name, NInodes)
	}
	fs.inodes[idx] = inode{used: true}
	fs.byName[name] = idx
	if err := fs.persistInode(idx, inodeField{kind: fieldUsed}, inodeField{kind: fieldSize}); err != nil {
		return nil, err
	}
	return &File{fs: fs, idx: idx, name: name}, nil
}

// Remove deletes a file and frees its extents.
func (fs *FS) Remove(name string) error {
	fs.charge()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	idx, ok := fs.byName[name]
	if !ok {
		return fmt.Errorf("%s: no such file %q", fs.prof.Name, name)
	}
	if err := fs.freeExtents(idx); err != nil {
		return err
	}
	fs.inodes[idx] = inode{}
	delete(fs.byName, name)
	return fs.persistInode(idx, inodeField{kind: fieldUsed}, inodeField{kind: fieldSize})
}

func (fs *FS) freeExtents(idx int) error {
	ino := &fs.inodes[idx]
	for _, e := range ino.extents {
		if err := fs.alloc.Free(e.off); err != nil {
			return err
		}
	}
	ino.extents = nil
	if ino.indirOff != 0 {
		if err := fs.alloc.Free(ino.indirOff); err != nil {
			return err
		}
		ino.indirOff = 0
	}
	return nil
}

// File is an open file handle.
type File struct {
	fs   *FS
	idx  int
	name string
}

// Name reports the file name.
func (f *File) Name() string { return f.name }

// Size reports the logical file size in bytes.
func (f *File) Size() int64 { return f.fs.inodes[f.idx].size }

// capacityBytes is the sum of the file's extent sizes.
func (f *File) capacityBytes() int64 {
	var c int64
	for _, e := range f.fs.inodes[f.idx].extents {
		c += e.size
	}
	return c
}

// addExtent grows the file by one extent following the doubling policy.
func (f *File) addExtent() error {
	fs := f.fs
	ino := &fs.inodes[f.idx]
	size := fs.prof.MinExtent
	if n := len(ino.extents); n > 0 {
		size = ino.extents[n-1].size * 2
		if size > fs.prof.MaxExtent {
			size = fs.prof.MaxExtent
		}
	}
	if len(ino.extents) >= DirectExtents+IndirectCap {
		return fmt.Errorf("%s: file %q exceeds maximum extents", fs.prof.Name, f.name)
	}
	// Extents are aligned to the I/O granularity so sector rounding in
	// writeChunk/readChunk never crosses an extent boundary.
	align := int64(fs.prof.Granularity)
	if align < 1 {
		align = 1
	}
	off, err := fs.alloc.AllocAligned(size, align)
	if err != nil {
		return err
	}
	if len(ino.extents) == DirectExtents && ino.indirOff == 0 {
		indirOff, err := fs.alloc.Alloc(IndirectCap * 16)
		if err != nil {
			return err
		}
		ino.indirOff = indirOff
		if err := fs.persistInode(f.idx, inodeField{kind: fieldIndirect}); err != nil {
			return err
		}
	}
	ino.extents = append(ino.extents, extent{off, size})
	return fs.persistInode(f.idx, inodeField{kind: fieldExtent, i: len(ino.extents) - 1})
}

// locate maps a logical byte offset to (device offset, bytes contiguous in
// that extent).
func (f *File) locate(off int64) (int64, int64, error) {
	pos := int64(0)
	for _, e := range f.fs.inodes[f.idx].extents {
		if off < pos+e.size {
			within := off - pos
			return e.off + within, e.size - within, nil
		}
		pos += e.size
	}
	return 0, 0, fmt.Errorf("%s: offset %d beyond capacity of %q", f.fs.prof.Name, off, f.name)
}

// Append writes data at the end of the file. Appends are the only write
// path the persistence layer needs (collections are append-only).
func (f *File) Append(data []byte) error {
	fs := f.fs
	fs.charge()
	ino := &fs.inodes[f.idx]
	off := ino.size
	for len(data) > 0 {
		for off >= f.capacityBytes() {
			if err := f.addExtent(); err != nil {
				return err
			}
		}
		devOff, contig, err := f.locate(off)
		if err != nil {
			return err
		}
		n := int64(len(data))
		if n > contig {
			n = contig
		}
		if err := f.writeChunk(devOff, data[:n], off); err != nil {
			return err
		}
		data = data[n:]
		off += n
	}
	ino.size = off
	if fs.prof.SizeUpdateEveryAppend {
		return fs.persistInode(f.idx, inodeField{kind: fieldSize})
	}
	return nil
}

// writeChunk performs the device write honouring the flavour granularity.
// logical is the file offset of the chunk (used for sector alignment).
func (f *File) writeChunk(devOff int64, data []byte, logical int64) error {
	g := int64(f.fs.prof.Granularity)
	if g <= 1 {
		return f.fs.dev.WriteAt(data, devOff)
	}
	// Sector discipline: round the write range out to sector boundaries.
	// The head sector may contain live bytes from a previous append and
	// must be read-modify-written; the tail is padded (those bytes are
	// beyond the logical size, so padding is harmless).
	start := devOff / g * g
	end := (devOff + int64(len(data)) + g - 1) / g * g
	buf := make([]byte, end-start)
	if devOff > start && logical > 0 {
		// Head sector holds earlier data: read it back first.
		if err := f.fs.dev.ReadAt(buf[:g], start); err != nil {
			return err
		}
	}
	copy(buf[devOff-start:], data)
	return f.fs.dev.WriteAt(buf, start)
}

// ReadAt fills dst from logical offset off.
func (f *File) ReadAt(dst []byte, off int64) error {
	fs := f.fs
	fs.charge()
	if off < 0 || off+int64(len(dst)) > f.Size() {
		return fmt.Errorf("%s: read [%d,+%d) past size %d of %q", fs.prof.Name, off, len(dst), f.Size(), f.name)
	}
	for len(dst) > 0 {
		devOff, contig, err := f.locate(off)
		if err != nil {
			return err
		}
		n := int64(len(dst))
		if n > contig {
			n = contig
		}
		if err := f.readChunk(dst[:n], devOff); err != nil {
			return err
		}
		dst = dst[n:]
		off += n
	}
	return nil
}

// readChunk reads honouring the flavour granularity: sector flavours
// fetch whole covering sectors.
func (f *File) readChunk(dst []byte, devOff int64) error {
	g := int64(f.fs.prof.Granularity)
	if g <= 1 {
		return f.fs.dev.ReadAt(dst, devOff)
	}
	start := devOff / g * g
	end := (devOff + int64(len(dst)) + g - 1) / g * g
	buf := make([]byte, end-start)
	if err := f.fs.dev.ReadAt(buf, start); err != nil {
		return err
	}
	copy(dst, buf[devOff-start:])
	return nil
}

// Sync persists outstanding metadata (the size field for flavours that
// batch it).
func (f *File) Sync() error {
	f.fs.charge()
	return f.fs.persistInode(f.idx, inodeField{kind: fieldSize})
}

// Truncate discards the file contents, freeing extents.
func (f *File) Truncate() error {
	fs := f.fs
	fs.charge()
	if err := fs.freeExtents(f.idx); err != nil {
		return err
	}
	fs.inodes[f.idx].size = 0
	return fs.persistInode(f.idx, inodeField{kind: fieldSize})
}
