package storage

import (
	"fmt"
	"io"
)

// Slice returns a read-only view of records [start, end) of c. Scans of
// the view read only the covered byte range; the segmented algorithms use
// views to process input fractions without copying them. Mutating methods
// fail.
func Slice(c Collection, start, end int) Collection {
	if start < 0 {
		start = 0
	}
	if end > c.Len() {
		end = c.Len()
	}
	if start > end {
		start = end
	}
	return &view{c: c, start: start, end: end}
}

type view struct {
	c          Collection
	start, end int
}

func (v *view) Name() string {
	return fmt.Sprintf("%s[%d:%d]", v.c.Name(), v.start, v.end)
}

func (v *view) RecordSize() int { return v.c.RecordSize() }

func (v *view) Len() int { return v.end - v.start }

func (v *view) Append([]byte) error {
	return fmt.Errorf("storage: append to read-only view %q", v.Name())
}

func (v *view) Truncate() error {
	return fmt.Errorf("storage: truncate of read-only view %q", v.Name())
}

func (v *view) Close() error { return nil }

func (v *view) Destroy() error {
	return fmt.Errorf("storage: destroy of read-only view %q", v.Name())
}

func (v *view) Scan() Iterator { return v.ScanFrom(0) }

func (v *view) ScanFrom(start int) Iterator {
	if start < 0 {
		start = 0
	}
	abs := v.start + start
	if abs > v.end {
		abs = v.end
	}
	return &viewIterator{it: v.c.ScanFrom(abs), remaining: v.end - abs}
}

type viewIterator struct {
	it        Iterator
	remaining int
}

func (it *viewIterator) Next() ([]byte, error) {
	if it.remaining <= 0 {
		return nil, io.EOF
	}
	rec, err := it.it.Next()
	if err != nil {
		return nil, err
	}
	it.remaining--
	return rec, nil
}

func (it *viewIterator) Close() error { return it.it.Close() }
