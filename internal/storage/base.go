package storage

import (
	"fmt"
	"io"
)

// BlockStore is the backend-specific persistence of a collection's byte
// stream. The shared BaseCollection chops the record stream into blocks
// and calls WriteBlock in strictly increasing seq order; ReadBlock serves
// any previously written block. Implementations charge their own device
// I/O and software overheads.
type BlockStore interface {
	// WriteBlock persists block seq (seq·BlockSize byte offset). All
	// blocks except the last have exactly the factory block size.
	WriteBlock(seq int, data []byte) error
	// ReadBlock fills dst with the contents of the byte range
	// [off, off+len(dst)); the range is guaranteed to have been written.
	ReadBlock(off int64, dst []byte) error
	// Truncate discards all persisted bytes.
	Truncate() error
	// Destroy releases all device resources.
	Destroy() error
}

// BaseCollection implements Collection on top of a BlockStore. It owns the
// DRAM tail buffer: appended records accumulate in DRAM and are flushed to
// the store one block at a time, which is the paper's cacheline/block
// exchange discipline between the bufferpool and persistent memory (Fig. 3).
type BaseCollection struct {
	name      string
	recSize   int
	blockSize int
	store     BlockStore

	n         int   // records appended
	flushed   int64 // bytes handed to the store
	tail      []byte
	closed    bool
	destroyed bool
}

// NewBaseCollection wires a collection facade over store.
func NewBaseCollection(name string, recSize, blockSize int, store BlockStore) *BaseCollection {
	return &BaseCollection{
		name:      name,
		recSize:   recSize,
		blockSize: blockSize,
		store:     store,
		tail:      make([]byte, 0, blockSize),
	}
}

// Name implements Collection.
func (c *BaseCollection) Name() string { return c.name }

// RecordSize implements Collection.
func (c *BaseCollection) RecordSize() int { return c.recSize }

// Len implements Collection.
func (c *BaseCollection) Len() int { return c.n }

// Append implements Collection.
func (c *BaseCollection) Append(rec []byte) error {
	if c.destroyed {
		return fmt.Errorf("storage: append to destroyed collection %q", c.name)
	}
	if c.closed {
		return fmt.Errorf("storage: append to closed collection %q: %w", c.name, ErrClosed)
	}
	if len(rec) != c.recSize {
		return fmt.Errorf("storage: collection %q: record size %d, want %d", c.name, len(rec), c.recSize)
	}
	c.tail = append(c.tail, rec...)
	c.n++
	for len(c.tail) >= c.blockSize {
		if err := c.store.WriteBlock(int(c.flushed/int64(c.blockSize)), c.tail[:c.blockSize]); err != nil {
			return err
		}
		c.flushed += int64(c.blockSize)
		c.tail = append(c.tail[:0], c.tail[c.blockSize:]...)
	}
	return nil
}

// Scan implements Collection.
func (c *BaseCollection) Scan() Iterator { return c.ScanFrom(0) }

// ScanFrom implements Collection.
func (c *BaseCollection) ScanFrom(start int) Iterator {
	if start < 0 {
		start = 0
	}
	if start > c.n {
		start = c.n
	}
	return &baseIterator{
		c:     c,
		abs:   int64(start) * int64(c.recSize),
		total: int64(c.n) * int64(c.recSize),
		rec:   make([]byte, c.recSize),
		block: make([]byte, 0, c.blockSize),
	}
}

// Truncate implements Collection.
func (c *BaseCollection) Truncate() error {
	if c.destroyed {
		return fmt.Errorf("storage: truncate of destroyed collection %q", c.name)
	}
	if err := c.store.Truncate(); err != nil {
		return err
	}
	c.n = 0
	c.flushed = 0
	c.tail = c.tail[:0]
	c.closed = false
	return nil
}

// Syncer is implemented by stores that batch metadata updates and need a
// flush at collection close (the sector-filesystem flavour).
type Syncer interface {
	Sync() error
}

// Close implements Collection: it flushes the partial tail block and any
// batched store metadata.
func (c *BaseCollection) Close() error {
	if c.destroyed || c.closed {
		return nil
	}
	if len(c.tail) > 0 {
		if err := c.store.WriteBlock(int(c.flushed/int64(c.blockSize)), c.tail); err != nil {
			return err
		}
		c.flushed += int64(len(c.tail))
		// Keep tail contents for in-flight iterators: they may still be
		// serving bytes from DRAM; flushed bytes shadow them consistently.
		c.tail = c.tail[:0]
	}
	if s, ok := c.store.(Syncer); ok {
		if err := s.Sync(); err != nil {
			return err
		}
	}
	c.closed = true
	return nil
}

// Destroy implements Collection.
func (c *BaseCollection) Destroy() error {
	if c.destroyed {
		return nil
	}
	c.destroyed = true
	c.closed = true
	c.tail = nil
	return c.store.Destroy()
}

// baseIterator streams the byte range [0, total) assembled into records.
// Bytes at positions below c.flushed come from the store; the rest from
// the DRAM tail. abs is the absolute offset of the next unconsumed byte;
// the chunk buffer holds fetched-but-unconsumed bytes ending at abs+len.
type baseIterator struct {
	c     *BaseCollection
	abs   int64 // absolute offset of the next byte to consume
	total int64
	rec   []byte
	block []byte   // current fetched chunk
	boff  int      // consume offset within block
	views [][]byte // NextChunk result backing, reused per call
	done  bool
}

func (it *baseIterator) Next() ([]byte, error) {
	if it.done || it.abs >= it.total {
		it.done = true
		return nil, io.EOF
	}
	if it.c.destroyed {
		return nil, fmt.Errorf("storage: scan of destroyed collection %q", it.c.name)
	}
	filled := 0
	for filled < it.c.recSize {
		if it.boff >= len(it.block) {
			if err := it.fetch(); err != nil {
				return nil, err
			}
		}
		n := copy(it.rec[filled:], it.block[it.boff:])
		filled += n
		it.boff += n
		it.abs += int64(n)
	}
	return it.rec, nil
}

// NextChunk implements ChunkIterator: it serves every complete record
// already buffered, refilling the buffer with a multi-block fetch when
// empty. The fetch issues the same per-block store reads the
// record-at-a-time path would — one ReadBlock per aligned block, each
// block read exactly once — so device counters are independent of the
// consumer's batching. A record straddling the buffered range falls back
// to the copying Next path (one record for that call).
func (it *baseIterator) NextChunk(max int) ([][]byte, error) {
	if max < 1 {
		max = 1
	}
	if it.done || it.abs >= it.total {
		it.done = true
		return nil, io.EOF
	}
	if it.c.destroyed {
		return nil, fmt.Errorf("storage: scan of destroyed collection %q", it.c.name)
	}
	rs := it.c.recSize
	if it.boff >= len(it.block) {
		blocks := (max*rs + it.c.blockSize - 1) / it.c.blockSize
		if err := it.fetchN(blocks); err != nil {
			return nil, err
		}
	}
	it.views = it.views[:0]
	for len(it.views) < max && it.boff+rs <= len(it.block) && it.abs+int64(rs) <= it.total {
		it.views = append(it.views, it.block[it.boff:it.boff+rs])
		it.boff += rs
		it.abs += int64(rs)
	}
	if len(it.views) > 0 {
		return it.views, nil
	}
	// Buffered bytes end mid-record: assemble one record through the
	// copying path (the previous call's views have been consumed, so the
	// refill inside Next may reuse the buffer).
	rec, err := it.Next()
	if err != nil {
		return nil, err
	}
	it.views = append(it.views, rec)
	return it.views, nil
}

// fetch loads the next chunk starting at it.abs.
func (it *baseIterator) fetch() error { return it.fetchN(1) }

// fetchN loads up to n store blocks starting at it.abs, one ReadBlock
// per aligned block (identical offsets and lengths to n single-block
// fetches), or the DRAM tail once the flushed range is consumed.
func (it *baseIterator) fetchN(n int) error {
	if it.abs >= it.total {
		return fmt.Errorf("storage: collection %q: stream ended mid-record", it.c.name)
	}
	if n < 1 {
		n = 1
	}
	bs := int64(it.c.blockSize)
	if it.abs < it.c.flushed {
		// Fetch block-aligned chunks from the store.
		start := it.abs / bs * bs
		end := start + int64(n)*bs
		if end > it.c.flushed {
			end = it.c.flushed
		}
		if n := int(end - start); cap(it.block) < n {
			it.block = make([]byte, n)
		} else {
			it.block = it.block[:n]
		}
		for off := start; off < end; off += bs {
			stop := off + bs
			if stop > end {
				stop = end
			}
			if err := it.c.store.ReadBlock(off, it.block[off-start:stop-start]); err != nil {
				return err
			}
		}
		it.boff = int(it.abs - start)
		return nil
	}
	// Serve from the DRAM tail: tail offset 0 is byte offset c.flushed.
	toff := it.abs - it.c.flushed
	if toff >= int64(len(it.c.tail)) {
		return fmt.Errorf("storage: collection %q: iterator position %d beyond data", it.c.name, it.abs)
	}
	avail := it.c.tail[toff:]
	if need := it.total - it.abs; int64(len(avail)) > need {
		avail = avail[:need]
	}
	it.block = append(it.block[:0], avail...)
	it.boff = 0
	return nil
}

func (it *baseIterator) Close() error {
	it.done = true
	it.block = nil
	it.views = nil
	return nil
}
