package storage_test

import (
	"fmt"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"wlpm/internal/pmem"
	"wlpm/internal/record"
	"wlpm/internal/storage"
	"wlpm/internal/storage/all"
)

// newFactory builds a backend on a fresh 64 MiB device.
func newFactory(t *testing.T, backend string) storage.Factory {
	t.Helper()
	dev := pmem.MustOpen(pmem.Config{Capacity: 64 << 20})
	f, err := all.New(backend, dev, 0)
	if err != nil {
		t.Fatalf("all.New(%q): %v", backend, err)
	}
	return f
}

func forEachBackend(t *testing.T, fn func(t *testing.T, f storage.Factory)) {
	for _, b := range storage.Backends {
		t.Run(b, func(t *testing.T) {
			fn(t, newFactory(t, b))
		})
	}
}

func TestFactoryIdentity(t *testing.T) {
	forEachBackend(t, func(t *testing.T, f storage.Factory) {
		found := false
		for _, b := range storage.Backends {
			if f.Name() == b {
				found = true
			}
		}
		if !found {
			t.Errorf("factory name %q not registered", f.Name())
		}
		if f.BlockSize() != storage.DefaultBlockSize {
			t.Errorf("BlockSize = %d, want default %d", f.BlockSize(), storage.DefaultBlockSize)
		}
		if f.Device() == nil {
			t.Error("Device() is nil")
		}
	})
}

func TestUnknownBackend(t *testing.T) {
	dev := pmem.MustOpen(pmem.Config{Capacity: 1 << 20})
	if _, err := all.New("floppy", dev, 0); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

func TestCreateValidation(t *testing.T) {
	forEachBackend(t, func(t *testing.T, f storage.Factory) {
		if _, err := f.Create("", 80); err == nil {
			t.Error("empty name accepted")
		}
		if _, err := f.Create("c", 0); err == nil {
			t.Error("zero record size accepted")
		}
		if _, err := f.Create("dup", 80); err != nil {
			t.Fatalf("Create: %v", err)
		}
		if _, err := f.Create("dup", 80); err == nil {
			t.Error("duplicate name accepted")
		}
	})
}

func TestAppendScanRoundTrip(t *testing.T) {
	forEachBackend(t, func(t *testing.T, f storage.Factory) {
		c, err := f.Create("t", record.Size)
		if err != nil {
			t.Fatal(err)
		}
		const n = 1000
		for i := 0; i < n; i++ {
			if err := c.Append(record.New(uint64(i))); err != nil {
				t.Fatalf("Append #%d: %v", i, err)
			}
		}
		if c.Len() != n {
			t.Fatalf("Len = %d, want %d", c.Len(), n)
		}
		// Scan before Close: tail records still in DRAM must be visible.
		checkSequential(t, c, n)
		if err := c.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		// And after Close: everything served from the device.
		checkSequential(t, c, n)
	})
}

func checkSequential(t *testing.T, c storage.Collection, n int) {
	t.Helper()
	it := c.Scan()
	defer it.Close()
	for i := 0; i < n; i++ {
		rec, err := it.Next()
		if err != nil {
			t.Fatalf("Next #%d: %v", i, err)
		}
		if got := record.Key(rec); got != uint64(i) {
			t.Fatalf("record %d has key %d", i, got)
		}
	}
	if _, err := it.Next(); err != io.EOF {
		t.Fatalf("Next past end = %v, want io.EOF", err)
	}
}

func TestRecordSizeMismatch(t *testing.T) {
	forEachBackend(t, func(t *testing.T, f storage.Factory) {
		c, _ := f.Create("t", 80)
		if err := c.Append(make([]byte, 79)); err == nil {
			t.Error("short record accepted")
		}
		if err := c.Append(make([]byte, 81)); err == nil {
			t.Error("long record accepted")
		}
	})
}

func TestAppendAfterClose(t *testing.T) {
	forEachBackend(t, func(t *testing.T, f storage.Factory) {
		c, _ := f.Create("t", 80)
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		if err := c.Append(make([]byte, 80)); err == nil {
			t.Error("append after Close succeeded")
		}
	})
}

func TestTruncateAndReuse(t *testing.T) {
	forEachBackend(t, func(t *testing.T, f storage.Factory) {
		c, _ := f.Create("t", record.Size)
		for i := 0; i < 100; i++ {
			if err := c.Append(record.New(uint64(i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Truncate(); err != nil {
			t.Fatalf("Truncate: %v", err)
		}
		if c.Len() != 0 {
			t.Fatalf("Len after Truncate = %d", c.Len())
		}
		for i := 0; i < 50; i++ {
			if err := c.Append(record.New(uint64(1000 + i))); err != nil {
				t.Fatal(err)
			}
		}
		recs, err := storage.ReadAll(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 50 || record.Key(recs[0]) != 1000 {
			t.Fatalf("after reuse: %d records, first key %d", len(recs), record.Key(recs[0]))
		}
	})
}

func TestDestroyReleasesSpace(t *testing.T) {
	forEachBackend(t, func(t *testing.T, f storage.Factory) {
		c, _ := f.Create("t", record.Size)
		for i := 0; i < 1000; i++ {
			if err := c.Append(record.New(uint64(i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Destroy(); err != nil {
			t.Fatalf("Destroy: %v", err)
		}
		if err := c.Append(record.New(1)); err == nil {
			t.Error("append after Destroy succeeded")
		}
		// Space must be reusable: fill a large fraction of the device.
		c2, err := f.Create("t2", record.Size)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			if err := c2.Append(record.New(uint64(i))); err != nil {
				t.Fatalf("append to t2 after destroy of t: %v", err)
			}
		}
	})
}

func TestNameReusableAfterDestroy(t *testing.T) {
	forEachBackend(t, func(t *testing.T, f storage.Factory) {
		c, err := f.Create("temp", record.Size)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Append(record.New(1)); err != nil {
			t.Fatal(err)
		}
		if err := c.Destroy(); err != nil {
			t.Fatal(err)
		}
		// Operators create and destroy temp collections repeatedly; the
		// name must be reusable like a deleted file's.
		c2, err := f.Create("temp", record.Size)
		if err != nil {
			t.Fatalf("recreate after Destroy: %v", err)
		}
		if c2.Len() != 0 {
			t.Fatalf("recreated collection has %d records", c2.Len())
		}
	})
}

func TestConcurrentIterators(t *testing.T) {
	forEachBackend(t, func(t *testing.T, f storage.Factory) {
		c, _ := f.Create("t", record.Size)
		const n = 500
		for i := 0; i < n; i++ {
			if err := c.Append(record.New(uint64(i))); err != nil {
				t.Fatal(err)
			}
		}
		it1, it2 := c.Scan(), c.Scan()
		defer it1.Close()
		defer it2.Close()
		for i := 0; i < n; i++ {
			r1, err1 := it1.Next()
			if err1 != nil {
				t.Fatal(err1)
			}
			k1 := record.Key(r1)
			r2, err2 := it2.Next()
			if err2 != nil {
				t.Fatal(err2)
			}
			if k1 != record.Key(r2) {
				t.Fatalf("iterators diverge at %d: %d vs %d", i, k1, record.Key(r2))
			}
		}
	})
}

func TestScanSnapshotWhileAppending(t *testing.T) {
	forEachBackend(t, func(t *testing.T, f storage.Factory) {
		c, _ := f.Create("t", record.Size)
		for i := 0; i < 100; i++ {
			if err := c.Append(record.New(uint64(i))); err != nil {
				t.Fatal(err)
			}
		}
		it := c.Scan()
		defer it.Close()
		// Appends after Scan must not be observed by this iterator.
		for i := 100; i < 200; i++ {
			if err := c.Append(record.New(uint64(i))); err != nil {
				t.Fatal(err)
			}
		}
		count := 0
		for {
			_, err := it.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			count++
		}
		if count != 100 {
			t.Fatalf("snapshot iterator saw %d records, want 100", count)
		}
	})
}

// Odd record sizes exercise records straddling block and sector
// boundaries.
func TestOddRecordSizes(t *testing.T) {
	forEachBackend(t, func(t *testing.T, f storage.Factory) {
		for _, size := range []int{1, 7, 63, 64, 65, 80, 511, 512, 513, 1024, 1500} {
			c, err := f.Create(fmt.Sprintf("sz%d", size), size)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(size)))
			const n = 64
			want := make([][]byte, n)
			for i := range want {
				rec := make([]byte, size)
				rng.Read(rec)
				want[i] = rec
				if err := c.Append(rec); err != nil {
					t.Fatalf("size %d append #%d: %v", size, i, err)
				}
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			got, err := storage.ReadAll(c)
			if err != nil {
				t.Fatalf("size %d: %v", size, err)
			}
			if len(got) != n {
				t.Fatalf("size %d: got %d records", size, len(got))
			}
			for i := range got {
				if string(got[i]) != string(want[i]) {
					t.Fatalf("size %d: record %d mismatch", size, i)
				}
			}
		}
	})
}

func TestCopyAll(t *testing.T) {
	forEachBackend(t, func(t *testing.T, f storage.Factory) {
		src, _ := f.Create("src", record.Size)
		for i := 0; i < 100; i++ {
			if err := src.Append(record.New(uint64(i))); err != nil {
				t.Fatal(err)
			}
		}
		dst, _ := f.Create("dst", record.Size)
		n, err := storage.CopyAll(dst, src)
		if err != nil || n != 100 {
			t.Fatalf("CopyAll = %d, %v", n, err)
		}
		checkSequential(t, dst, 100)
	})
}

// Property: a random sequence of appends round-trips byte-exactly through
// every backend.
func TestQuickRoundTrip(t *testing.T) {
	for _, b := range storage.Backends {
		b := b
		t.Run(b, func(t *testing.T) {
			f := func(seed int64, nRaw uint8) bool {
				n := int(nRaw)%200 + 1
				fac := newFactory(t, b)
				c, err := fac.Create("q", record.Size)
				if err != nil {
					return false
				}
				rng := rand.New(rand.NewSource(seed))
				keys := make([]uint64, n)
				for i := range keys {
					keys[i] = rng.Uint64()
					if err := c.Append(record.New(keys[i])); err != nil {
						return false
					}
				}
				if rng.Intn(2) == 0 {
					if err := c.Close(); err != nil {
						return false
					}
				}
				got, err := storage.ReadAll(c)
				if err != nil || len(got) != n {
					return false
				}
				for i := range got {
					if record.Key(got[i]) != keys[i] {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// The backends must exhibit the paper's write-cost ordering on an
// append-heavy workload: dynarray (copy amplification) must write more
// cachelines than blocked, and the filesystems must add only metadata.
func TestBackendWriteProfile(t *testing.T) {
	writes := make(map[string]uint64)
	for _, b := range storage.Backends {
		f := newFactory(t, b)
		c, err := f.Create("w", record.Size)
		if err != nil {
			t.Fatal(err)
		}
		f.Device().ResetStats()
		for i := 0; i < 20000; i++ {
			if err := c.Append(record.New(uint64(i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		writes[b] = f.Device().Stats().Writes
	}
	if writes["dynarray"] <= writes["blocked"]*3/2 {
		t.Errorf("dynarray writes %d not amplified vs blocked %d", writes["dynarray"], writes["blocked"])
	}
	if writes["pmfs"] < writes["blocked"] {
		t.Errorf("pmfs writes %d below blocked %d", writes["pmfs"], writes["blocked"])
	}
	if writes["pmfs"] > writes["blocked"]*3/2 {
		t.Errorf("pmfs metadata overhead too large: %d vs blocked %d", writes["pmfs"], writes["blocked"])
	}
	if writes["ramdisk"] < writes["blocked"] {
		t.Errorf("ramdisk writes %d below blocked %d", writes["ramdisk"], writes["blocked"])
	}
}

// The software-overhead clock must order the backends as the paper's
// implementation comparison does for the access path: blocked charges
// nothing, pmfs less than ramdisk.
func TestBackendSoftOverhead(t *testing.T) {
	soft := make(map[string]int64)
	for _, b := range storage.Backends {
		f := newFactory(t, b)
		c, err := f.Create("s", record.Size)
		if err != nil {
			t.Fatal(err)
		}
		f.Device().ResetStats()
		for i := 0; i < 5000; i++ {
			if err := c.Append(record.New(uint64(i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		it := c.Scan()
		for {
			if _, err := it.Next(); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
		}
		it.Close()
		soft[b] = int64(f.Device().Stats().SoftTime)
	}
	if soft["blocked"] != 0 {
		t.Errorf("blocked charged software time %d", soft["blocked"])
	}
	if soft["dynarray"] != 0 {
		t.Errorf("dynarray charged software time %d", soft["dynarray"])
	}
	if !(soft["pmfs"] > 0 && soft["ramdisk"] > soft["pmfs"]) {
		t.Errorf("software overhead ordering violated: pmfs=%d ramdisk=%d", soft["pmfs"], soft["ramdisk"])
	}
}
