// Package storage defines the thin persistence layer of the paper's
// implementation stack (§3, Fig. 3): persistent collections hosted in
// persistent memory, manipulated by the runtime algorithms through a common
// abstraction, with data exchanged between DRAM and the device in blocks.
//
// Four interchangeable backends instantiate the layer, one per
// implementation alternative evaluated in the paper (§3.2):
//
//   - blocked  — linked memory blocks; zero overhead beyond raw device I/O
//   - dynarray — doubling dynamic array; write amplification on growth
//   - ramdisk  — block-granularity filesystem (512-byte sectors)
//   - pmfs     — byte-addressable filesystem in the spirit of Intel PMFS
package storage

import (
	"errors"
	"fmt"
	"io"

	"wlpm/internal/pmem"
)

// DefaultBlockSize is the DRAM↔PM exchange unit. The paper evaluated 512 B
// to 8 KiB and settled on 1024 B (§4, "Implementation and hardware").
const DefaultBlockSize = 1024

// ErrClosed is returned by operations on a closed collection.
var ErrClosed = errors.New("storage: collection is closed")

// Collection is an append-only sequence of fixed-size records in
// persistent memory. Collections are not safe for concurrent use; the
// algorithms of the paper are single-threaded (§4).
type Collection interface {
	// Name identifies the collection within its factory.
	Name() string
	// RecordSize is the fixed record size in bytes.
	RecordSize() int
	// Len reports the number of records appended so far.
	Len() int
	// Append copies rec (exactly RecordSize bytes) to the end.
	Append(rec []byte) error
	// Scan returns an iterator over all records present when Scan was
	// called. Multiple simultaneous iterators are allowed; appending while
	// scanning is allowed and the iterator observes the prefix.
	Scan() Iterator
	// ScanFrom returns an iterator positioned at record index start
	// without reading the skipped prefix (segmented algorithms scan input
	// suffixes directly).
	ScanFrom(start int) Iterator
	// Truncate discards all records, keeping the collection usable.
	Truncate() error
	// Close flushes buffered data. A closed collection may still be
	// scanned but not appended to.
	Close() error
	// Destroy releases the collection's device space. The collection is
	// unusable afterwards.
	Destroy() error
}

// Iterator streams records. The slice returned by Next is only valid until
// the following call; callers must copy to retain.
type Iterator interface {
	// Next returns the next record, or io.EOF when exhausted.
	Next() ([]byte, error)
	// Close releases iterator resources.
	Close() error
}

// ChunkIterator is the optional batched form of Iterator, implemented by
// iterators that can hand out several whole records per call without
// per-record copies. NextChunk returns between 1 and max records in
// stream order, or io.EOF when exhausted; the views (and their backing
// bytes) are only valid until the following NextChunk/Next call. A
// chunked consumer performs exactly the same device reads as a
// record-at-a-time consumer of the same prefix: blocks are fetched once
// each, in order, at the same offsets and lengths — batching is a DRAM
// interpretation change, never an I/O change.
type ChunkIterator interface {
	NextChunk(max int) ([][]byte, error)
}

// Factory creates collections on a shared device. Factory names are the
// experiment-facing backend identifiers ("blocked", "dynarray", "ramdisk",
// "pmfs").
type Factory interface {
	Name() string
	Device() *pmem.Device
	// Create makes an empty collection. Names must be unique per factory.
	Create(name string, recordSize int) (Collection, error)
	// BlockSize is the DRAM↔PM exchange unit used by this factory.
	BlockSize() int
}

// Backends lists the canonical backend names in the paper's presentation
// order of increasing abstraction overhead at the memory end.
var Backends = []string{"blocked", "pmfs", "ramdisk", "dynarray"}

// CopyAll appends every record of src to dst and reports the count.
func CopyAll(dst Collection, src Collection) (int, error) {
	it := src.Scan()
	defer it.Close()
	n := 0
	for {
		rec, err := it.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := dst.Append(rec); err != nil {
			return n, err
		}
		n++
	}
}

// ReadAll materializes src into a DRAM slice of copied records; intended
// for tests and small collections.
func ReadAll(src Collection) ([][]byte, error) {
	it := src.Scan()
	defer it.Close()
	var out [][]byte
	for {
		rec, err := it.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		cp := make([]byte, len(rec))
		copy(cp, rec)
		out = append(out, cp)
	}
}

// ValidateCreate checks common Create argument errors for backends.
func ValidateCreate(name string, recordSize int) error {
	if name == "" {
		return fmt.Errorf("storage: empty collection name")
	}
	if recordSize <= 0 {
		return fmt.Errorf("storage: record size must be positive, got %d", recordSize)
	}
	return nil
}
