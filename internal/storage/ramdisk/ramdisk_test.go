package ramdisk

import (
	"testing"

	"wlpm/internal/pmem"
	"wlpm/internal/record"
	"wlpm/internal/storage"
)

func TestFactoryBasics(t *testing.T) {
	dev := pmem.MustOpen(pmem.Config{Capacity: 32 << 20})
	f, err := New(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "ramdisk" || f.BlockSize() != storage.DefaultBlockSize {
		t.Fatalf("factory identity broken: %s/%d", f.Name(), f.BlockSize())
	}
	if _, err := f.Create("dup", record.Size); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Create("dup", record.Size); err == nil {
		t.Error("duplicate collection accepted")
	}
}

// The RAM disk's defining property: all data I/O is rounded to whole
// 512-byte sectors and metadata updates rewrite whole inode sectors, so
// it writes strictly more than the byte-addressable filesystem for the
// same workload.
func TestSectorOverheadExceedsPMFS(t *testing.T) {
	run := func(mk func(dev *pmem.Device) storage.Factory) pmem.Stats {
		dev := pmem.MustOpen(pmem.Config{Capacity: 32 << 20})
		f := mk(dev)
		c, err := f.Create("c", record.Size)
		if err != nil {
			t.Fatal(err)
		}
		dev.ResetStats()
		// 81 records = 6480 bytes: a deliberately sector-unaligned tail.
		for i := 0; i < 81; i++ {
			if err := c.Append(record.New(uint64(i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		return dev.Stats()
	}
	rd := run(func(dev *pmem.Device) storage.Factory {
		f, err := New(dev, 0)
		if err != nil {
			t.Fatal(err)
		}
		return f
	})
	if rd.Writes == 0 || rd.SoftTime == 0 {
		t.Fatalf("ramdisk stats implausible: %+v", rd)
	}
	// Tail flush of a partial block must still write whole sectors:
	// writes are a multiple of 8 cachelines (512 B) for the data portion
	// plus inode sectors — so total lines are divisible by 8.
	if rd.Writes%8 != 0 {
		t.Errorf("ramdisk wrote %d lines; sector granularity requires a multiple of 8", rd.Writes)
	}
}
