// Package ramdisk implements the paper's RAM-disk persistence layer
// (§3.2, "RAM disk"): a complete lightweight filesystem mounted in memory.
// Files are manipulated through filesystem calls at 512-byte sector
// granularity — the traditional block-device interface — so every data
// access is rounded out to whole sectors and metadata updates rewrite
// whole inode sectors. The per-call software overhead models the
// filesystem code path the paper identifies as this option's cost.
package ramdisk

import (
	"fmt"
	"sync"
	"time"

	"wlpm/internal/pmem"
	"wlpm/internal/storage"
	"wlpm/internal/storage/fsbase"
)

// SectorSize is the classic disk record size the paper cites for RAM-disk
// files.
const SectorSize = 512

// CallOverhead is the modelled software cost per filesystem call: a
// system call plus the generic block-filesystem code path.
const CallOverhead = 600 * time.Nanosecond

// Factory creates collections as files on a freshly formatted RAM disk.
// Create and Destroy are safe for concurrent use; individual collections
// remain single-owner.
type Factory struct {
	fs        *fsbase.FS
	blockSize int

	mu    sync.Mutex
	names map[string]bool
}

// New formats dev as a RAM disk and returns its factory. Initialization
// failures (an undersized or exhausted device) return a wrapped error so
// callers can fail cleanly instead of panicking.
func New(dev *pmem.Device, blockSize int) (*Factory, error) {
	if blockSize <= 0 {
		blockSize = storage.DefaultBlockSize
	}
	fs, err := fsbase.Format(dev, fsbase.Profile{
		Name:            "ramdisk",
		Granularity:     SectorSize,
		CallOverhead:    CallOverhead,
		InodeWriteWhole: true,
	})
	if err != nil {
		return nil, fmt.Errorf("ramdisk: format: %w", err)
	}
	return &Factory{fs: fs, blockSize: blockSize, names: make(map[string]bool)}, nil
}

// Name implements storage.Factory.
func (f *Factory) Name() string { return "ramdisk" }

// Device implements storage.Factory.
func (f *Factory) Device() *pmem.Device { return f.fs.Device() }

// BlockSize implements storage.Factory.
func (f *Factory) BlockSize() int { return f.blockSize }

// Create implements storage.Factory.
func (f *Factory) Create(name string, recordSize int) (storage.Collection, error) {
	if err := storage.ValidateCreate(name, recordSize); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.names[name] {
		return nil, fmt.Errorf("ramdisk: collection %q already exists", name)
	}
	file, err := f.fs.Create(name)
	if err != nil {
		return nil, err
	}
	f.names[name] = true
	return storage.NewBaseCollection(name, recordSize, f.blockSize, &store{f: f, file: file}), nil
}

type store struct {
	f    *Factory
	file *fsbase.File
}

func (s *store) WriteBlock(_ int, data []byte) error { return s.file.Append(data) }

func (s *store) ReadBlock(off int64, dst []byte) error { return s.file.ReadAt(dst, off) }

func (s *store) Sync() error { return s.file.Sync() }

func (s *store) Truncate() error { return s.file.Truncate() }

// Destroy removes the backing file and releases the name for reuse.
func (s *store) Destroy() error {
	s.f.mu.Lock()
	delete(s.f.names, s.file.Name())
	s.f.mu.Unlock()
	return s.f.fs.Remove(s.file.Name())
}
