package storage

// Parallel range appends. A collection whose backend can reserve its
// block layout up front can accept one batch of appends through several
// concurrent, order-preserving writers — the mechanism behind the sorts'
// parallel final merge pass. The byte stream produced is identical to
// the same records appended serially: block slots (and their device
// locations) are reserved in sequence order before any writer starts,
// every full block is written exactly once at its final location, and
// the trailing partial block becomes the collection's DRAM tail exactly
// as a serial append run would leave it. Cacheline write counts are
// therefore independent of how the batch is split across writers.
//
// Record ranges rarely align with block boundaries, so the writers form
// a fragment chain: writer i hands its trailing partial-block bytes to
// writer i+1, which prepends them to its own first bytes to complete
// that boundary block. The hand-off channels are buffered, writers send
// their (range-independent) trailing fragment before blocking on their
// predecessor, and an aborting writer poisons its successor — so the
// chain never deadlocks and unwinds cleanly on error.

import (
	"errors"
	"fmt"
)

// ErrRangeAppendUnsupported reports that a collection's backend cannot
// reserve block slots up front; callers fall back to serial appends.
var ErrRangeAppendUnsupported = errors.New("storage: range append unsupported by backend")

// BlockStoreAt is the optional BlockStore capability behind parallel
// range appends: full-block slots are reserved (allocated) in seq order
// up front and then written in any order, possibly concurrently from
// several goroutines (at most one writer per slot).
type BlockStoreAt interface {
	BlockStore
	// ReserveBlocks reserves n full-block slots starting at seq (which
	// must be the current end of the chain), allocating their device
	// locations in ascending seq order — the exact placement n in-order
	// WriteBlock calls would produce.
	ReserveBlocks(seq, n int) error
	// WriteReserved persists one full block into a reserved slot. Safe
	// for concurrent use on distinct slots.
	WriteReserved(seq int, data []byte) error
	// ReleaseBlocks discards the reserved slots [seq, seq+n) — written
	// or not — restoring the store to its pre-reservation state. The
	// released range must be the current end of the chain.
	ReleaseBlocks(seq, n int) error
}

// Unwrapper is implemented by collection decorators (temp trackers, run
// samplers); capability probes unwrap through it.
type Unwrapper interface{ Unwrap() Collection }

// RangeAppender is the collection-level capability: one batch of
// appends, split into contiguous per-writer record ranges.
type RangeAppender interface {
	// AppendRanges opens a range-append session for len(counts) writers,
	// writer i appending exactly counts[i] records. It returns
	// ErrRangeAppendUnsupported (wrapped) when the backend cannot
	// reserve block slots.
	AppendRanges(counts []int) (*RangeAppend, error)
}

// AsRangeAppender unwraps c through any decorator chain to a collection
// that can open range-append sessions.
func AsRangeAppender(c Collection) (RangeAppender, bool) {
	for c != nil {
		if ra, ok := c.(RangeAppender); ok {
			return ra, true
		}
		u, ok := c.(Unwrapper)
		if !ok {
			return nil, false
		}
		c = u.Unwrap()
	}
	return nil, false
}

// fragment is a partial-block hand-off between neighbouring writers.
// ok=false poisons the chain: the sender failed and the bytes are gone.
type fragment struct {
	data []byte
	ok   bool
}

// RangeAppend is one parallel append session on a BaseCollection. The
// session owns the reserved block slots until Commit installs them or
// Rollback releases them; until then the collection's readable state is
// untouched (readers never observe reserved slots). Writers may run on
// distinct goroutines; Commit and Rollback are single-threaded calls
// made after every writer has finished or aborted.
type RangeAppend struct {
	c        *BaseCollection
	store    BlockStoreAt
	total    int // records across all ranges
	firstSeq int // first reserved block slot
	nBlocks  int // reserved full-block slots
	links    []chan fragment
	writers  []*RangeWriter
	done     bool
}

// AppendRanges implements RangeAppender on the shared base collection.
func (c *BaseCollection) AppendRanges(counts []int) (*RangeAppend, error) {
	bsa, ok := c.store.(BlockStoreAt)
	if !ok {
		return nil, fmt.Errorf("storage: collection %q backend: %w", c.name, ErrRangeAppendUnsupported)
	}
	if c.destroyed {
		return nil, fmt.Errorf("storage: range append to destroyed collection %q", c.name)
	}
	if c.closed {
		return nil, fmt.Errorf("storage: range append to closed collection %q: %w", c.name, ErrClosed)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("storage: collection %q: range append needs at least one range", c.name)
	}
	bs := int64(c.blockSize)
	if c.flushed%bs != 0 {
		// A previously closed-and-reopened store could leave a partial
		// flushed block; the base collection never does, but guard anyway.
		return nil, fmt.Errorf("storage: collection %q: unaligned flushed prefix: %w", c.name, ErrRangeAppendUnsupported)
	}
	total := 0
	for i, n := range counts {
		if n < 0 {
			return nil, fmt.Errorf("storage: collection %q: negative range count %d at %d", c.name, n, i)
		}
		total += n
	}
	streamLen := int64(len(c.tail)) + int64(total)*int64(c.recSize)
	full := int(streamLen / bs)
	firstSeq := int(c.flushed / bs)
	if err := bsa.ReserveBlocks(firstSeq, full); err != nil {
		return nil, err
	}
	ra := &RangeAppend{
		c:        c,
		store:    bsa,
		total:    total,
		firstSeq: firstSeq,
		nBlocks:  full,
		links:    make([]chan fragment, len(counts)+1),
		writers:  make([]*RangeWriter, len(counts)),
	}
	for i := range ra.links {
		ra.links[i] = make(chan fragment, 1)
	}
	// Writer 0's incoming fragment is the current DRAM tail: the stream
	// starts at the last flushed block boundary.
	ra.links[0] <- fragment{data: append([]byte(nil), c.tail...), ok: true}
	pos := int64(len(c.tail))
	for i, n := range counts {
		lo := pos
		pos += int64(n) * int64(c.recSize)
		w := &RangeWriter{
			ra:        ra,
			recSize:   c.recSize,
			blockSize: c.blockSize,
			lo:        lo,
			hi:        pos,
			pos:       lo,
			remaining: n,
			fragLen:   int(lo % bs),
			in:        ra.links[i],
			out:       ra.links[i+1],
		}
		if w.fragLen > 0 {
			w.firstEnd = (lo/bs + 1) * bs
		} else {
			w.firstEnd = lo // no fragment-dependent first block
		}
		ra.writers[i] = w
	}
	return ra, nil
}

// Writer returns the writer for range i. Each writer is single-owner;
// distinct writers may be driven from distinct goroutines.
func (ra *RangeAppend) Writer(i int) *RangeWriter { return ra.writers[i] }

// Commit installs the batch: the final trailing fragment becomes the
// collection's DRAM tail, and the record count and flushed byte mark
// advance exactly as the same appends made serially would have left
// them. Every writer must have finished.
func (ra *RangeAppend) Commit() error {
	if ra.done {
		return fmt.Errorf("storage: collection %q: range append session already closed", ra.c.name)
	}
	for i, w := range ra.writers {
		if !w.finished {
			return fmt.Errorf("storage: collection %q: range %d not finished at commit", ra.c.name, i)
		}
	}
	c := ra.c
	bs := int64(c.blockSize)
	if c.flushed != int64(ra.firstSeq)*bs {
		return fmt.Errorf("storage: collection %q mutated during range append", c.name)
	}
	last := <-ra.links[len(ra.links)-1]
	if !last.ok {
		return fmt.Errorf("storage: collection %q: range append chain poisoned at commit", c.name)
	}
	ra.done = true
	c.tail = append(c.tail[:0], last.data...)
	c.flushed = int64(ra.firstSeq+ra.nBlocks) * bs
	c.n += ra.total
	return nil
}

// Rollback abandons the session, releasing every reserved block slot;
// the collection is exactly as it was before AppendRanges. Safe to call
// after a failed Commit attempt; a no-op once the session is closed.
func (ra *RangeAppend) Rollback() error {
	if ra.done {
		return nil
	}
	ra.done = true
	return ra.store.ReleaseBlocks(ra.firstSeq, ra.nBlocks)
}

// RangeWriter appends one contiguous record range of a RangeAppend
// session. It is owned by a single goroutine. Exactly the range's
// record count must be appended, then Finish called; Abort (idempotent,
// a no-op after Finish) releases the writer's chain obligations on
// error paths so neighbouring writers never block on a failed one —
// defer it alongside Finish.
type RangeWriter struct {
	ra        *RangeAppend
	recSize   int
	blockSize int
	lo, hi    int64 // stream byte range [lo, hi) produced by this writer
	pos       int64 // next stream byte offset to produce
	remaining int   // records still expected
	fragLen   int   // predecessor bytes needed to complete the first block
	firstEnd  int64 // stream offset one past the fragment-dependent first block

	firstPart []byte // own bytes of the first block, staged until the fragment arrives
	frag      []byte // received predecessor bytes for the first block
	block     []byte // current block assembly buffer past firstEnd
	in, out   chan fragment
	gotFrag   bool
	sentOut   bool
	finished  bool
	aborted   bool
}

// Append appends the next record of the writer's range.
func (w *RangeWriter) Append(rec []byte) error {
	if w.aborted || w.finished {
		return fmt.Errorf("storage: append to closed range writer on %q", w.ra.c.name)
	}
	if len(rec) != w.recSize {
		return fmt.Errorf("storage: range writer on %q: record size %d, want %d", w.ra.c.name, len(rec), w.recSize)
	}
	if w.remaining == 0 {
		return fmt.Errorf("storage: range writer on %q: range overflow", w.ra.c.name)
	}
	w.remaining--
	bs := int64(w.blockSize)
	for len(rec) > 0 {
		blockEnd := (w.pos/bs + 1) * bs
		n := int(blockEnd - w.pos)
		if n > len(rec) {
			n = len(rec)
		}
		if w.pos < w.firstEnd {
			w.firstPart = append(w.firstPart, rec[:n]...)
		} else {
			w.block = append(w.block, rec[:n]...)
		}
		w.pos += int64(n)
		rec = rec[n:]
		if w.pos == blockEnd {
			if err := w.completeBlock(blockEnd - bs); err != nil {
				return err
			}
		}
	}
	return nil
}

// completeBlock persists the just-filled block starting at stream offset
// blockStart. The fragment-dependent first block is only written once
// the predecessor's trailing bytes are in hand; later blocks are written
// immediately — writers never block mid-range.
func (w *RangeWriter) completeBlock(blockStart int64) error {
	bs := int64(w.blockSize)
	seq := w.ra.firstSeq + int(blockStart/bs)
	if blockStart+bs == w.firstEnd && w.fragLen > 0 {
		if !w.gotFrag {
			select {
			case f := <-w.in:
				if !f.ok {
					w.aborted = true
					return fmt.Errorf("storage: range append on %q: predecessor failed", w.ra.c.name)
				}
				w.gotFrag = true
				w.frag = f.data
			default:
				return nil // predecessor still running; written at Finish
			}
		}
		return w.writeFirst(seq)
	}
	err := w.ra.store.WriteReserved(seq, w.block)
	w.block = w.block[:0]
	return err
}

// writeFirst assembles and persists the fragment-dependent first block.
// Caller guarantees the fragment has been received into w.frag.
func (w *RangeWriter) writeFirst(seq int) error {
	buf := make([]byte, 0, w.blockSize)
	buf = append(buf, w.frag...)
	buf = append(buf, w.firstPart...)
	w.frag, w.firstPart = nil, nil
	return w.ra.store.WriteReserved(seq, buf)
}

// Finish completes the writer's range: the trailing partial-block bytes
// are handed to the successor, and the first block — if still pending on
// the predecessor — is written. Exactly the declared record count must
// have been appended.
func (w *RangeWriter) Finish() error {
	if w.aborted {
		return fmt.Errorf("storage: finish of aborted range writer on %q", w.ra.c.name)
	}
	if w.finished {
		return nil
	}
	if w.remaining != 0 {
		w.Abort()
		return fmt.Errorf("storage: range writer on %q finished %d records short", w.ra.c.name, w.remaining)
	}
	// smallRange: the whole range sits inside the fragment-dependent
	// first block, so the outgoing fragment depends on the incoming one.
	smallRange := w.fragLen > 0 && w.pos < w.firstEnd
	if !smallRange {
		// The trailing fragment is independent of the predecessor: hand
		// it over before blocking so the chain drains in any order.
		out := append([]byte(nil), w.block...)
		w.send(fragment{data: out, ok: true})
	}
	if w.fragLen > 0 && !w.gotFrag {
		f := <-w.in
		if !f.ok {
			w.aborted = true
			w.send(fragment{ok: false})
			return fmt.Errorf("storage: range append on %q: predecessor failed", w.ra.c.name)
		}
		w.gotFrag = true
		w.frag = f.data
		if smallRange {
			combined := make([]byte, 0, len(f.data)+len(w.firstPart))
			combined = append(combined, f.data...)
			combined = append(combined, w.firstPart...)
			w.firstPart = nil
			w.send(fragment{data: combined, ok: true})
			w.finished = true
			return nil
		}
		bs := int64(w.blockSize)
		if err := w.writeFirst(w.ra.firstSeq + int((w.firstEnd-bs)/bs)); err != nil {
			w.aborted = true
			return err
		}
	}
	w.finished = true
	return nil
}

// Abort abandons the writer, poisoning its successor so neighbouring
// writers blocked on the fragment chain unwind. Idempotent and a no-op
// after Finish; safe to defer unconditionally.
func (w *RangeWriter) Abort() {
	if w.finished || w.aborted {
		return
	}
	w.aborted = true
	w.send(fragment{ok: false})
}

// send forwards to the successor exactly once per writer lifetime; the
// channel is buffered so the send never blocks.
func (w *RangeWriter) send(f fragment) {
	if w.sentOut {
		return
	}
	w.sentOut = true
	w.out <- f
}
