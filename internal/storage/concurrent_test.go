package storage_test

import (
	"fmt"
	"sync"
	"testing"

	"wlpm/internal/record"
	"wlpm/internal/storage"
)

// TestConcurrentCreate hammers each backend's catalog with concurrent
// Create/Append/Close/Destroy cycles — the access pattern of the
// partition-parallel operators (run with -race).
func TestConcurrentCreate(t *testing.T) {
	forEachBackend(t, func(t *testing.T, f storage.Factory) {
		const workers, rounds, recs = 8, 10, 30
		var wg sync.WaitGroup
		errCh := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					name := fmt.Sprintf("w%d.r%d", w, r)
					c, err := f.Create(name, record.Size)
					if err != nil {
						errCh <- fmt.Errorf("create %s: %w", name, err)
						return
					}
					for i := 0; i < recs; i++ {
						if err := c.Append(record.New(uint64(w*1000 + i))); err != nil {
							errCh <- fmt.Errorf("append %s: %w", name, err)
							return
						}
					}
					if err := c.Close(); err != nil {
						errCh <- fmt.Errorf("close %s: %w", name, err)
						return
					}
					if c.Len() != recs {
						errCh <- fmt.Errorf("%s has %d records, want %d", name, c.Len(), recs)
						return
					}
					// Destroy every other round so names are both reused
					// and retained across workers.
					if r%2 == 0 {
						if err := c.Destroy(); err != nil {
							errCh <- fmt.Errorf("destroy %s: %w", name, err)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatal(err)
		}
	})
}

// TestConcurrentCreateDuplicate checks that exactly one of many racing
// Create calls for the same name wins on every backend.
func TestConcurrentCreateDuplicate(t *testing.T) {
	forEachBackend(t, func(t *testing.T, f storage.Factory) {
		const racers = 8
		var wg sync.WaitGroup
		wins := make(chan storage.Collection, racers)
		for i := 0; i < racers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if c, err := f.Create("contested", record.Size); err == nil {
					wins <- c
				}
			}()
		}
		wg.Wait()
		close(wins)
		n := 0
		for range wins {
			n++
		}
		if n != 1 {
			t.Fatalf("%d racing Creates succeeded, want exactly 1", n)
		}
	})
}
