package pmfs

import (
	"testing"

	"wlpm/internal/pmem"
	"wlpm/internal/record"
	"wlpm/internal/storage"
)

func TestFactoryBasics(t *testing.T) {
	dev := pmem.MustOpen(pmem.Config{Capacity: 32 << 20})
	f, err := New(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "pmfs" || f.BlockSize() != storage.DefaultBlockSize || f.Device() != dev {
		t.Fatalf("factory identity broken: %s/%d", f.Name(), f.BlockSize())
	}
	if _, err := New(pmem.MustOpen(pmem.Config{Capacity: 1 << 10}), 0); err == nil {
		t.Error("formatted a device smaller than the metadata region")
	}
}

// PMFS's defining property versus the RAM disk: byte-granularity access,
// so metadata overhead is a few percent, not whole sectors.
func TestByteGranularMetadataOverhead(t *testing.T) {
	dev := pmem.MustOpen(pmem.Config{Capacity: 32 << 20})
	f, err := New(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := f.Create("c", record.Size)
	if err != nil {
		t.Fatal(err)
	}
	const n = 12800 // 1 MiB payload
	dev.ResetStats()
	for i := 0; i < n; i++ {
		if err := c.Append(record.New(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	st := dev.Stats()
	payload := uint64(n * record.Size / 64)
	if st.Writes < payload {
		t.Fatalf("writes %d below payload %d", st.Writes, payload)
	}
	if st.Writes > payload*115/100 {
		t.Errorf("metadata overhead too large: %d writes for %d payload lines", st.Writes, payload)
	}
	if st.SoftTime == 0 {
		t.Error("filesystem calls charged no software time")
	}
}

func TestDestroyFreesFile(t *testing.T) {
	dev := pmem.MustOpen(pmem.Config{Capacity: 32 << 20})
	f, err := New(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := f.Create("c", record.Size)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := c.Append(record.New(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := c.Destroy(); err != nil {
		t.Fatalf("second Destroy not idempotent: %v", err)
	}
}
