// Package pmfs implements the paper's byte-addressable-filesystem
// persistence layer (§3.2, "Byte-addressable filesystem"), modelled on
// Intel PMFS: file access compiles down to load/store instructions at byte
// granularity, with fine-grained metadata persistence (an 8-byte size
// update per append) and a kernel-level call path whose overhead is far
// below a block filesystem's.
package pmfs

import (
	"fmt"
	"sync"
	"time"

	"wlpm/internal/pmem"
	"wlpm/internal/storage"
	"wlpm/internal/storage/fsbase"
)

// CallOverhead is the modelled software cost per filesystem call: PMFS is
// a kernel-level filesystem with a deliberately thin code path.
const CallOverhead = 150 * time.Nanosecond

// Factory creates collections as files on a freshly formatted PMFS
// volume. Create and Destroy are safe for concurrent use; individual
// collections remain single-owner.
type Factory struct {
	fs        *fsbase.FS
	blockSize int

	mu    sync.Mutex
	names map[string]bool
}

// New formats dev as a PMFS volume and returns its factory.
// Initialization failures (an undersized or exhausted device) return a
// wrapped error so callers can fail cleanly instead of panicking.
func New(dev *pmem.Device, blockSize int) (*Factory, error) {
	if blockSize <= 0 {
		blockSize = storage.DefaultBlockSize
	}
	fs, err := fsbase.Format(dev, fsbase.Profile{
		Name:                  "pmfs",
		Granularity:           1, // byte-addressable
		CallOverhead:          CallOverhead,
		SizeUpdateEveryAppend: true,
	})
	if err != nil {
		return nil, fmt.Errorf("pmfs: format: %w", err)
	}
	return &Factory{fs: fs, blockSize: blockSize, names: make(map[string]bool)}, nil
}

// Name implements storage.Factory.
func (f *Factory) Name() string { return "pmfs" }

// Device implements storage.Factory.
func (f *Factory) Device() *pmem.Device { return f.fs.Device() }

// BlockSize implements storage.Factory.
func (f *Factory) BlockSize() int { return f.blockSize }

// Create implements storage.Factory.
func (f *Factory) Create(name string, recordSize int) (storage.Collection, error) {
	if err := storage.ValidateCreate(name, recordSize); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.names[name] {
		return nil, fmt.Errorf("pmfs: collection %q already exists", name)
	}
	file, err := f.fs.Create(name)
	if err != nil {
		return nil, err
	}
	f.names[name] = true
	return storage.NewBaseCollection(name, recordSize, f.blockSize, &store{f: f, file: file}), nil
}

type store struct {
	f    *Factory
	file *fsbase.File
}

func (s *store) WriteBlock(_ int, data []byte) error { return s.file.Append(data) }

func (s *store) ReadBlock(off int64, dst []byte) error { return s.file.ReadAt(dst, off) }

func (s *store) Truncate() error { return s.file.Truncate() }

// Destroy removes the backing file and releases the name for reuse.
func (s *store) Destroy() error {
	s.f.mu.Lock()
	delete(s.f.names, s.file.Name())
	s.f.mu.Unlock()
	return s.f.fs.Remove(s.file.Name())
}
