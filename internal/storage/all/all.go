// Package all registers the four persistence-layer backends behind one
// constructor, keyed by the paper's implementation names.
package all

import (
	"fmt"

	"wlpm/internal/pmem"
	"wlpm/internal/storage"
	"wlpm/internal/storage/blocked"
	"wlpm/internal/storage/dynarray"
	"wlpm/internal/storage/pmfs"
	"wlpm/internal/storage/ramdisk"
)

// New creates a factory for the named backend ("blocked", "dynarray",
// "ramdisk", "pmfs") on dev. Backend initialization failures are
// returned wrapped with the backend name — never panicked — so the
// façade and the CLIs can fail cleanly.
func New(name string, dev *pmem.Device, blockSize int) (storage.Factory, error) {
	switch name {
	case "blocked":
		return blocked.New(dev, blockSize), nil
	case "dynarray":
		return dynarray.New(dev, blockSize), nil
	case "ramdisk":
		f, err := ramdisk.New(dev, blockSize)
		if err != nil {
			return nil, fmt.Errorf("storage: backend %q: %w", name, err)
		}
		return f, nil
	case "pmfs":
		f, err := pmfs.New(dev, blockSize)
		if err != nil {
			return nil, fmt.Errorf("storage: backend %q: %w", name, err)
		}
		return f, nil
	default:
		return nil, fmt.Errorf("storage: unknown backend %q (want one of %v)", name, storage.Backends)
	}
}
