// Package all registers the four persistence-layer backends behind one
// constructor, keyed by the paper's implementation names.
package all

import (
	"fmt"

	"wlpm/internal/pmem"
	"wlpm/internal/storage"
	"wlpm/internal/storage/blocked"
	"wlpm/internal/storage/dynarray"
	"wlpm/internal/storage/pmfs"
	"wlpm/internal/storage/ramdisk"
)

// New creates a factory for the named backend ("blocked", "dynarray",
// "ramdisk", "pmfs") on dev.
func New(name string, dev *pmem.Device, blockSize int) (storage.Factory, error) {
	switch name {
	case "blocked":
		return blocked.New(dev, blockSize), nil
	case "dynarray":
		return dynarray.New(dev, blockSize), nil
	case "ramdisk":
		return ramdisk.New(dev, blockSize)
	case "pmfs":
		return pmfs.New(dev, blockSize)
	default:
		return nil, fmt.Errorf("storage: unknown backend %q (want one of %v)", name, storage.Backends)
	}
}

// MustNew is New for known-good arguments.
func MustNew(name string, dev *pmem.Device, blockSize int) storage.Factory {
	f, err := New(name, dev, blockSize)
	if err != nil {
		panic(err)
	}
	return f
}
