package all

import (
	"testing"

	"wlpm/internal/pmem"
	"wlpm/internal/storage"
)

func TestNewCoversEveryBackend(t *testing.T) {
	for _, b := range storage.Backends {
		dev := pmem.MustOpen(pmem.Config{Capacity: 16 << 20})
		f, err := New(b, dev, 0)
		if err != nil {
			t.Fatalf("New(%q): %v", b, err)
		}
		if f.Name() != b {
			t.Errorf("New(%q).Name() = %q", b, f.Name())
		}
	}
}

func TestNewRejectsUnknownBackend(t *testing.T) {
	if _, err := New("tape", pmem.MustOpen(pmem.Config{Capacity: 1 << 20}), 0); err == nil {
		t.Error("New(unknown backend) succeeded")
	}
}

func TestNewPropagatesFormatErrors(t *testing.T) {
	// A device too small for filesystem metadata must fail cleanly.
	tiny := pmem.MustOpen(pmem.Config{Capacity: 4 << 10})
	if _, err := New("pmfs", tiny, 0); err == nil {
		t.Error("pmfs on a tiny device succeeded")
	}
	if _, err := New("ramdisk", tiny, 0); err == nil {
		t.Error("ramdisk on a tiny device succeeded")
	}
}
