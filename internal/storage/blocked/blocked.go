// Package blocked implements the paper's blocked-memory persistence layer
// (§3.2, "Blocked memory"): a collection is a chain of fixed-size memory
// blocks allocated one at a time, with no copying on expansion and no
// filesystem machinery. Its only cost is the raw device I/O, which makes
// it the reference implementation the paper recommends striving towards.
package blocked

import (
	"fmt"
	"sync"

	"wlpm/internal/pmem"
	"wlpm/internal/storage"
)

// Factory creates blocked-memory collections. Create and Destroy are safe
// for concurrent use; individual collections remain single-owner.
type Factory struct {
	alloc     *pmem.Allocator
	blockSize int

	mu    sync.Mutex
	names map[string]bool
}

// New returns a factory on dev with the given block size (0 for the
// default).
func New(dev *pmem.Device, blockSize int) *Factory {
	if blockSize <= 0 {
		blockSize = storage.DefaultBlockSize
	}
	return &Factory{
		alloc:     pmem.NewAllocator(dev),
		blockSize: blockSize,
		names:     make(map[string]bool),
	}
}

// Name implements storage.Factory.
func (f *Factory) Name() string { return "blocked" }

// Device implements storage.Factory.
func (f *Factory) Device() *pmem.Device { return f.alloc.Device() }

// BlockSize implements storage.Factory.
func (f *Factory) BlockSize() int { return f.blockSize }

// Create implements storage.Factory.
func (f *Factory) Create(name string, recordSize int) (storage.Collection, error) {
	if err := storage.ValidateCreate(name, recordSize); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.names[name] {
		return nil, fmt.Errorf("blocked: collection %q already exists", name)
	}
	f.names[name] = true
	return storage.NewBaseCollection(name, recordSize, f.blockSize, &store{f: f, name: name}), nil
}

// store keeps the chain of device blocks. The chain itself (block offsets
// in order) is thin-persistence-layer metadata held in DRAM; the paper's
// blocked memory is "an in-memory file representation without the overhead
// of persistence", i.e. metadata maintenance is deliberately free.
type store struct {
	f      *Factory
	name   string
	blocks []int64 // device offset per block seq
	sizes  []int   // bytes used per block (last may be partial)
}

func (s *store) WriteBlock(seq int, data []byte) error {
	if seq != len(s.blocks) {
		return fmt.Errorf("blocked: out-of-order block write %d (have %d)", seq, len(s.blocks))
	}
	off, err := s.f.alloc.Alloc(int64(s.f.blockSize))
	if err != nil {
		return err
	}
	if err := s.f.alloc.Device().WriteAt(data, off); err != nil {
		return err
	}
	s.blocks = append(s.blocks, off)
	s.sizes = append(s.sizes, len(data))
	return nil
}

func (s *store) ReadBlock(off int64, dst []byte) error {
	bs := int64(s.f.blockSize)
	for len(dst) > 0 {
		seq := off / bs
		if seq >= int64(len(s.blocks)) {
			return fmt.Errorf("blocked: read past end (offset %d)", off)
		}
		within := off - seq*bs
		n := int64(s.sizes[seq]) - within
		if n <= 0 {
			return fmt.Errorf("blocked: read past block %d contents", seq)
		}
		if n > int64(len(dst)) {
			n = int64(len(dst))
		}
		if err := s.f.alloc.Device().ReadAt(dst[:n], s.blocks[seq]+within); err != nil {
			return err
		}
		dst = dst[n:]
		off += n
	}
	return nil
}

// ReserveBlocks implements storage.BlockStoreAt: it allocates n
// full-block slots in ascending seq order — the exact device placement n
// in-order WriteBlock calls would produce, so parallel range appends are
// cacheline-identical to serial ones.
func (s *store) ReserveBlocks(seq, n int) error {
	if seq != len(s.blocks) {
		return fmt.Errorf("blocked: out-of-order block reservation %d (have %d)", seq, len(s.blocks))
	}
	for i := 0; i < n; i++ {
		off, err := s.f.alloc.Alloc(int64(s.f.blockSize))
		if err != nil {
			// Unwind the partial reservation so the store is unchanged.
			if rerr := s.ReleaseBlocks(seq, i); rerr != nil {
				return rerr
			}
			return err
		}
		s.blocks = append(s.blocks, off)
		s.sizes = append(s.sizes, s.f.blockSize)
	}
	return nil
}

// WriteReserved implements storage.BlockStoreAt. It only reads the
// block chain (never mutates it) and the device handles concurrent
// writes to disjoint offsets, so distinct reserved slots may be written
// from distinct goroutines.
func (s *store) WriteReserved(seq int, data []byte) error {
	if seq < 0 || seq >= len(s.blocks) {
		return fmt.Errorf("blocked: write to unreserved block %d (have %d)", seq, len(s.blocks))
	}
	if len(data) != s.f.blockSize {
		return fmt.Errorf("blocked: reserved block write of %d bytes, want %d", len(data), s.f.blockSize)
	}
	return s.f.alloc.Device().WriteAt(data, s.blocks[seq])
}

// ReleaseBlocks implements storage.BlockStoreAt, rolling back a
// reservation suffix.
func (s *store) ReleaseBlocks(seq, n int) error {
	if seq+n != len(s.blocks) {
		return fmt.Errorf("blocked: release of non-suffix blocks [%d,%d) (have %d)", seq, seq+n, len(s.blocks))
	}
	for i := seq; i < seq+n; i++ {
		if err := s.f.alloc.Free(s.blocks[i]); err != nil {
			return err
		}
	}
	s.blocks = s.blocks[:seq]
	s.sizes = s.sizes[:seq]
	return nil
}

func (s *store) Truncate() error {
	for _, off := range s.blocks {
		if err := s.f.alloc.Free(off); err != nil {
			return err
		}
	}
	s.blocks = s.blocks[:0]
	s.sizes = s.sizes[:0]
	return nil
}

// Destroy frees the blocks and releases the collection's name for reuse.
func (s *store) Destroy() error {
	s.f.mu.Lock()
	delete(s.f.names, s.name)
	s.f.mu.Unlock()
	return s.Truncate()
}
