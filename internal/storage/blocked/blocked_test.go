package blocked

import (
	"testing"

	"wlpm/internal/pmem"
	"wlpm/internal/record"
)

func TestZeroOverheadWrites(t *testing.T) {
	// Blocked memory's defining property: device writes equal exactly the
	// payload, rounded up to whole blocks — no metadata, no copying.
	dev := pmem.MustOpen(pmem.Config{Capacity: 8 << 20})
	f := New(dev, 1024)
	c, err := f.Create("c", record.Size)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1024 // 1024 × 80 B = 80 KiB = 80 blocks exactly
	dev.ResetStats()
	for i := 0; i < n; i++ {
		if err := c.Append(record.New(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	st := dev.Stats()
	wantLines := uint64(n * record.Size / 64)
	if st.Writes != wantLines {
		t.Errorf("writes = %d lines, want exactly payload %d", st.Writes, wantLines)
	}
	if st.Reads != 0 {
		t.Errorf("appends caused %d reads", st.Reads)
	}
	if st.SoftTime != 0 {
		t.Errorf("blocked memory charged software time %v", st.SoftTime)
	}
}

func TestOutOfOrderBlockWriteRejected(t *testing.T) {
	dev := pmem.MustOpen(pmem.Config{Capacity: 1 << 20})
	f := New(dev, 1024)
	s := &store{f: f}
	if err := s.WriteBlock(0, make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBlock(5, make([]byte, 1024)); err == nil {
		t.Error("out-of-order block write accepted")
	}
}

func TestReadPastContents(t *testing.T) {
	dev := pmem.MustOpen(pmem.Config{Capacity: 1 << 20})
	f := New(dev, 1024)
	s := &store{f: f}
	if err := s.WriteBlock(0, make([]byte, 100)); err != nil { // partial tail block
		t.Fatal(err)
	}
	if err := s.ReadBlock(0, make([]byte, 100)); err != nil {
		t.Fatalf("in-bounds read failed: %v", err)
	}
	if err := s.ReadBlock(0, make([]byte, 200)); err == nil {
		t.Error("read past block contents accepted")
	}
	if err := s.ReadBlock(4096, make([]byte, 10)); err == nil {
		t.Error("read past end accepted")
	}
}
