// Package client is the remote face of the wlpm query API: it speaks
// the wlserved /v1 protocol and mirrors the in-process fluent chain, so
//
//	rows, err := client.Dial(addr).Session("alice").Query(dsl).Rows(ctx)
//
// works like sys.Session(...).ParseQuery(dsl, ...).Rows(ctx), streaming
// records with backpressure. Records arrive byte-identical to
// in-process execution: the wire format is the record's fixed-size
// little-endian attribute array (see internal/server wire types).
// Cancelling ctx — or calling Rows.Close early — tears down the HTTP
// request, which the server observes as a disconnect and turns into
// cursor cancellation, releasing the query's memory grant and
// temporaries.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"wlpm/internal/server"
)

// Explain re-exports the compiled-plan explanation document.
type Explain = server.ExplainResponse

// Metrics re-exports the /v1/metrics document.
type Metrics = server.Metrics

// Client is a handle on one wlserved instance. It is cheap and safe for
// concurrent use; create sessions from it per tenant.
type Client struct {
	base string
	hc   *http.Client
}

// Dial targets a wlserved instance. addr is "host:port" or a full
// http:// URL. No connection is made until the first request.
func Dial(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{base: strings.TrimSuffix(addr, "/"), hc: &http.Client{}}
}

// WithHTTPClient substitutes the transport (tests, timeouts, proxies).
func (c *Client) WithHTTPClient(hc *http.Client) *Client {
	c.hc = hc
	return c
}

// Metrics fetches the server's /v1/metrics document unauthenticated
// (open-mode servers only; use Session.Metrics against configured
// tenants).
func (c *Client) Metrics(ctx context.Context) (*Metrics, error) {
	return c.metrics(ctx, nil)
}

func (c *Client) metrics(ctx context.Context, hdr http.Header) (*Metrics, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/metrics", nil)
	if err != nil {
		return nil, err
	}
	copyHeader(req.Header, hdr)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	m := new(Metrics)
	if err := json.NewDecoder(resp.Body).Decode(m); err != nil {
		return nil, err
	}
	return m, nil
}

// SessionOption configures Client.Session.
type SessionOption func(*Session)

// WithToken authenticates the session's requests with a bearer token.
func WithToken(token string) SessionOption {
	return func(s *Session) { s.token = token }
}

// Session is one tenant's remote handle, mirroring wlpm.Session. Safe
// for concurrent use.
type Session struct {
	c      *Client
	tenant string
	token  string
}

// Session opens a remote session as the named tenant. Against an
// open-mode server the name alone selects (and auto-provisions) the
// tenant; configured tenants authenticate with WithToken.
func (c *Client) Session(tenant string, opts ...SessionOption) *Session {
	s := &Session{c: c, tenant: tenant}
	for _, o := range opts {
		o(s)
	}
	return s
}

func (s *Session) header() http.Header {
	h := make(http.Header)
	if s.token != "" {
		h.Set("Authorization", "Bearer "+s.token)
	} else if s.tenant != "" {
		h.Set(server.TenantHeader, s.tenant)
	}
	return h
}

// Metrics fetches /v1/metrics with this session's credentials.
func (s *Session) Metrics(ctx context.Context) (*Metrics, error) {
	return s.c.metrics(ctx, s.header())
}

// Query starts a remote query from plan DSL source (see cmd/wlquery for
// the grammar). Errors — parse errors included — surface from Rows or
// Explain, like the in-process builder's deferred errors.
func (s *Session) Query(dsl string) *Query {
	return &Query{s: s, plan: dsl}
}

// Query is one remote query, ready to explain or execute.
type Query struct {
	s    *Session
	plan string
}

func (q *Query) post(ctx context.Context, path string) (*http.Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	body, err := json.Marshal(server.QueryRequest{Plan: q.plan})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, q.s.c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	copyHeader(req.Header, q.s.header())
	req.Header.Set("Content-Type", "application/json")
	return q.s.c.hc.Do(req)
}

// Explain compiles the plan on the server without running it.
func (q *Query) Explain(ctx context.Context) (*Explain, error) {
	resp, err := q.post(ctx, "/v1/explain")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	doc := new(Explain)
	if err := json.NewDecoder(resp.Body).Decode(doc); err != nil {
		return nil, err
	}
	return doc, nil
}

// Rows executes the plan and returns the streaming cursor. An admission
// rejection (fail-fast tenant, no memory free) surfaces here as an
// error; mid-stream failures surface from Rows.Err.
func (q *Query) Rows(ctx context.Context) (*Rows, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	resp, err := q.post(ctx, "/v1/query")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	// A row line is ~20 bytes per attribute; 1 MiB headroom covers very
	// wide records.
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	r := &Rows{body: resp.Body, sc: sc}
	if !sc.Scan() {
		r.Close()
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.ErrUnexpectedEOF
	}
	var line server.Line
	if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
		r.Close()
		return nil, err
	}
	switch {
	case line.Header != nil:
		r.header = *line.Header
		r.rec = make([]byte, line.Header.RecordSize)
	case line.Error != "":
		r.Close()
		return nil, fmt.Errorf("wlpm client: %s", line.Error)
	default:
		r.Close()
		return nil, fmt.Errorf("wlpm client: stream did not open with a header")
	}
	return r, nil
}

// Rows is the remote streaming cursor, mirroring wlpm.Rows: Next /
// Scan / Record / Err / Close, plus Explain once the stream is drained.
// Like its in-process counterpart it is single-owner.
type Rows struct {
	mu     sync.Mutex
	body   io.ReadCloser
	sc     *bufio.Scanner
	header server.Header
	rec    []byte
	valid  bool
	end    *server.End
	err    error
	closed bool
}

// Next advances to the next record; false on end of stream or error.
func (r *Rows) Next() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.valid = false
	if r.err != nil || r.end != nil || r.closed {
		return false
	}
	if !r.sc.Scan() {
		if err := r.sc.Err(); err != nil {
			r.err = err
		} else {
			r.err = io.ErrUnexpectedEOF // no terminal end/error line
		}
		return false
	}
	var line server.Line
	if err := json.Unmarshal(r.sc.Bytes(), &line); err != nil {
		r.err = err
		return false
	}
	switch {
	case line.Row != nil:
		if len(line.Row) != r.header.Attrs {
			r.err = fmt.Errorf("wlpm client: row with %d attrs, header says %d", len(line.Row), r.header.Attrs)
			return false
		}
		for i, v := range line.Row {
			binary.LittleEndian.PutUint64(r.rec[i*8:], v)
		}
		r.valid = true
		return true
	case line.Raw != nil:
		if len(line.Raw) != len(r.rec) {
			r.err = fmt.Errorf("wlpm client: raw record of %d bytes, header says %d", len(line.Raw), len(r.rec))
			return false
		}
		copy(r.rec, line.Raw)
		r.valid = true
		return true
	case line.End != nil:
		r.end = line.End
		return false
	case line.Error != "":
		r.err = fmt.Errorf("wlpm client: %s", line.Error)
		return false
	default:
		r.err = fmt.Errorf("wlpm client: unrecognized stream line %q", r.sc.Text())
		return false
	}
}

// Record returns the current record. The slice is owned by the cursor
// and only valid until the next call to Next; copy to retain.
func (r *Rows) Record() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.valid {
		return nil
	}
	return r.rec
}

// RecordSize is the byte width of the stream's records.
func (r *Rows) RecordSize() int { return r.header.RecordSize }

// Scan copies the current record's attributes into dsts (*uint64 each),
// or the whole record into a single *[]byte — the in-process contract.
func (r *Rows) Scan(dsts ...any) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.valid {
		return fmt.Errorf("wlpm client: Scan called without a successful Next")
	}
	if len(dsts) == 1 {
		if p, ok := dsts[0].(*[]byte); ok {
			*p = append((*p)[:0], r.rec...)
			return nil
		}
	}
	if len(dsts)*8 > len(r.rec) {
		return fmt.Errorf("wlpm client: Scan of %d attributes from a %d-byte record", len(dsts), len(r.rec))
	}
	for i, d := range dsts {
		p, ok := d.(*uint64)
		if !ok {
			return fmt.Errorf("wlpm client: Scan destination %d is %T, want *uint64 or a single *[]byte", i, d)
		}
		*p = binary.LittleEndian.Uint64(r.rec[i*8:])
	}
	return nil
}

// Err reports the first error hit by the stream (nil after a clean end).
func (r *Rows) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Rows is the server-reported row count, available after a clean end.
func (r *Rows) Rows() (int64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.end == nil {
		return 0, false
	}
	return r.end.Rows, true
}

// Explain returns the compiled plan (with actuals), available after the
// stream ends cleanly; nil before.
func (r *Rows) Explain() *server.End {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.end
}

// Close tears the stream down. Closing before the end line is a client
// disconnect: the server cancels the query's cursor, releasing its
// grant and temporaries.
func (r *Rows) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	return r.body.Close()
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

func decodeError(resp *http.Response) error {
	var e server.ErrorResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e); err == nil && e.Error != "" {
		return fmt.Errorf("wlpm client: %s (HTTP %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("wlpm client: HTTP %d", resp.StatusCode)
}
