module wlpm

go 1.22
