// Autotuning scenario: the paper's cost model (§2) lets an optimizer pick
// the algorithm and knob before running anything. This example estimates
// the I/O profile of every candidate, prices it with the medium's
// latencies, picks the winner, then executes everything and reports how
// well the estimated ranking agreed with reality — the Fig. 12
// methodology, Kendall's τ.
package main

import (
	"fmt"
	"log"
	"time"

	"wlpm"
)

const (
	rows      = 120_000
	memFrac   = 0.05
	blockSize = 1024
	lambda    = 15.0
	readNs    = 10.0
	writeNs   = 150.0
)

func main() {
	// Sizes in buffers, like the paper's cost expressions.
	t := float64(rows) * wlpm.RecordSize / blockSize
	m := memFrac * t
	xOpt := wlpm.OptimalSegmentSortIntensity(t, m, lambda)
	fmt.Printf("cost model: SegS response-optimal intensity for |T|=%.0f, M=%.0f buffers → x = %.3f\n\n", t, m, xOpt)

	cands := []struct {
		algo    wlpm.SortAlgorithm
		profile wlpm.IOProfile
	}{
		{wlpm.ExternalMergeSort(), wlpm.ProfileExternalMergeSort(t, m)},
		{wlpm.SegmentSort(0.2), wlpm.ProfileSegmentSort(0.2, t, m)},
		{wlpm.SegmentSort(0.5), wlpm.ProfileSegmentSort(0.5, t, m)},
		{wlpm.SegmentSort(0.8), wlpm.ProfileSegmentSort(0.8, t, m)},
		{wlpm.HybridSort(0.5), wlpm.ProfileHybridSort(0.5, t, m)},
	}

	fmt.Printf("%-14s %14s %16s %14s %14s\n", "candidate", "est. cost", "est. writes", "sim I/O", "writes")
	var est, measured []float64
	bestEst, bestIdx := 0.0, -1
	for i, c := range cands {
		price := c.profile.Price(readNs, writeNs)
		simIO, writes := runSort(c.algo)
		est = append(est, price)
		measured = append(measured, float64(simIO))
		if bestIdx < 0 || price < bestEst {
			bestEst, bestIdx = price, i
		}
		fmt.Printf("%-14s %14.4g %16.0f %14v %14d\n",
			c.algo.Name(), price, c.profile.Writes, simIO.Round(time.Microsecond), writes)
	}
	tau := wlpm.KendallTau(est, measured)
	fmt.Printf("\noptimizer's pick: %s — rank concordance with measurements (Kendall's τ): %.3f\n",
		cands[bestIdx].algo.Name(), tau)
	if tau < 0.5 {
		log.Fatalf("cost model ranking diverged from measurements (τ = %.3f)", tau)
	}
	fmt.Println("the optimizer can rank algorithms before touching the device")
}

// runSort executes a and reports the simulated I/O time and cacheline
// writes — the quantities the profiles estimate.
func runSort(a wlpm.SortAlgorithm) (time.Duration, uint64) {
	sys, err := wlpm.New(wlpm.WithCapacity(256 << 20))
	if err != nil {
		log.Fatal(err)
	}
	in, err := sys.Create("in")
	if err != nil {
		log.Fatal(err)
	}
	if err := wlpm.GenerateRecords(rows, 3, in.Append); err != nil {
		log.Fatal(err)
	}
	if err := in.Close(); err != nil {
		log.Fatal(err)
	}
	out, err := sys.Create("out")
	if err != nil {
		log.Fatal(err)
	}
	sys.ResetStats()
	if err := sys.Sort(a, in, out, int64(memFrac*rows*wlpm.RecordSize)); err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	return st.SimIOTime, st.Writes
}
