// Serving scenario: the full network stack in one process — a wlserved-
// style server over a shared System, two tenants driving it through the
// client package, one of them walking away mid-stream. It shows the
// serving subsystem's contract end to end:
//
//   - each tenant runs in its own engine session (own grant, own
//     admission, own collection namespace), scheduled into the memory
//     broker by the weighted fairness gate;
//   - results stream with backpressure and arrive byte-identical to
//     in-process execution;
//   - a client disconnect cancels the server-side cursor, releasing its
//     memory grant and temporaries — the metrics endpoint shows the
//     cancellation and the zeroed broker;
//   - graceful shutdown drains what is in flight.
//
// Run with: go run ./examples/serve
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"wlpm"
	"wlpm/client"
	"wlpm/internal/server"
)

const (
	nDim  = 2_000
	nFact = 40_000
	grant = int64(nFact) * wlpm.RecordSize / 20 // 5% of the fact table per query
	plan  = "scan(dim) | join(scan(fact); GJ) | orderby(ExMS)"
)

func main() {
	// --- server side: a system, two generated tables, two tenants ---
	sys, err := wlpm.New(
		wlpm.WithMemoryBudget(2*grant), // two grants: the tenants contend
		wlpm.WithCapacity(256<<20),
	)
	if err != nil {
		log.Fatal(err)
	}
	dim, err := sys.Create("dim")
	check(err)
	fact, err := sys.Create("fact")
	check(err)
	check(wlpm.GenerateJoinInputs(nDim, nFact, 42, dim.Append, fact.Append))
	check(dim.Close())
	check(fact.Close())

	srv, err := server.New(server.Config{
		Engine: sys.ServeEngine(map[string]wlpm.Collection{"dim": dim, "fact": fact}),
		Tenants: []server.Tenant{
			{Name: "alice", Token: "alice-token", Weight: 2, Budget: grant},
			{Name: "bob", Token: "bob-token", Weight: 1, Budget: grant},
		},
		DrainTimeout: 2 * time.Second,
	})
	check(err)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	addr := l.Addr().String()
	fmt.Printf("serving two tenants on %s\n\n", addr)

	// --- tenant alice: streams her query to the end ---
	alice := client.Dial(addr).Session("alice", client.WithToken("alice-token"))
	rows, err := alice.Query(plan).Rows(context.Background())
	check(err)
	var n int
	var firstKey uint64
	for rows.Next() {
		if n == 0 {
			check(rows.Scan(&firstKey))
		}
		n++
	}
	check(rows.Err())
	check(rows.Close())
	fmt.Printf("alice   streamed %d records of %d B (first key %d)\n", n, rows.RecordSize(), firstKey)

	// --- tenant bob: cancels mid-stream ---
	ctx, cancel := context.WithCancel(context.Background())
	brows, err := client.Dial(addr).Session("bob", client.WithToken("bob-token")).Query(plan).Rows(ctx)
	check(err)
	got := 0
	for got < 5 && brows.Next() {
		got++
	}
	cancel() // walk away: the server cancels bob's cursor
	brows.Close()
	fmt.Printf("bob     read %d records, then disconnected mid-stream\n", got)

	// The server unwinds bob's query: grant released, temps destroyed.
	for sys.MemoryInUse() != 0 {
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("broker  %d B granted after bob's disconnect\n\n", sys.MemoryInUse())

	// --- the metrics endpoint tells the story ---
	met, err := alice.Metrics(context.Background())
	check(err)
	for _, name := range []string{"alice", "bob"} {
		tm := met.Tenants[name]
		fmt.Printf("metrics %-6s queries=%d completed=%d cancelled=%d rows=%d (weight %d)\n",
			name, tm.Queries, tm.Completed, tm.Cancelled, tm.Rows, tm.Weight)
	}
	fmt.Printf("metrics broker  in_use=%d high_water=%d of %d B\n",
		met.Broker.InUse, met.Broker.HighWater, met.Broker.Total)

	// --- graceful shutdown ---
	check(srv.Shutdown(context.Background()))
	check(<-done)
	fmt.Println("\nserver drained and stopped")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
