// ETL bulk-load scenario: an append-only ingest of unordered events must
// be turned into a key-ordered file, but the persistent-memory device has
// an endurance budget — every write wears it. The example sweeps the
// write-intensity knob of segment sort and shows response time, write
// volume and device wear per setting, including the cost-model-chosen
// knob, so an operator can pick a point on the latency/endurance curve.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"wlpm"
)

const (
	rows   = 150_000
	budget = int64(rows * wlpm.RecordSize / 20) // 5% of the input
)

func run(a wlpm.SortAlgorithm) error {
	sys, err := wlpm.New(wlpm.WithCapacity(256<<20), wlpm.WithWearTracking())
	if err != nil {
		return err
	}
	ingest, err := sys.Create("ingest")
	if err != nil {
		return err
	}
	if err := wlpm.GenerateRecords(rows, 7, ingest.Append); err != nil {
		return err
	}
	if err := ingest.Close(); err != nil {
		return err
	}
	ordered, err := sys.Create("ordered")
	if err != nil {
		return err
	}

	// SortCtx: an operational ETL job would pass a deadline or SIGINT
	// context here; cancellation destroys the partial runs.
	sys.ResetStats()
	start := time.Now()
	if err := sys.SortCtx(context.Background(), a, ingest, ordered, budget); err != nil {
		return err
	}
	wall := time.Since(start)
	st := sys.Stats()
	wear := sys.Wear()
	fmt.Printf("%-14s response %8v   writes %8d   max wear %3d writes/line   mean %5.2f\n",
		a.Name(), (wall + st.SimTime()).Round(time.Millisecond),
		st.Writes, wear.MaxWrites, wear.MeanWrite)
	return nil
}

func main() {
	fmt.Printf("ETL load: %d events, %d B budget, λ = 15\n\n", rows, budget)
	for _, x := range []float64{0.0, 0.25, 0.5, 0.75, 1.0} {
		if err := run(wlpm.SegmentSort(x)); err != nil {
			log.Fatal(err)
		}
	}
	// The cost model picks the response-time-minimal intensity for this
	// input/memory/λ combination (Eq. 4).
	if err := run(wlpm.AutoSegmentSort()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlower intensity → fewer writes and less wear, paid for with extra read passes;")
	fmt.Println("the auto setting is the cost model's response-time optimum")
}
