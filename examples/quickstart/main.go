// Quickstart: sort one million records on simulated persistent memory
// with a write-limited algorithm and compare its I/O profile against
// external mergesort.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"wlpm"
)

func main() {
	const (
		n      = 200_000        // input records (80 B each)
		budget = int64(800_000) // 5% of the input, in bytes
	)

	for _, a := range []wlpm.SortAlgorithm{
		wlpm.ExternalMergeSort(), // the symmetric-I/O baseline
		wlpm.SegmentSort(0.2),    // write-limited, 20% write intensity
		wlpm.LazySort(),          // minimal writes, maximal laziness
	} {
		sys, err := wlpm.New(wlpm.WithCapacity(1 << 30))
		if err != nil {
			log.Fatal(err)
		}
		in, err := sys.Create("input")
		if err != nil {
			log.Fatal(err)
		}
		if err := wlpm.GenerateRecords(n, 42, in.Append); err != nil {
			log.Fatal(err)
		}
		if err := in.Close(); err != nil {
			log.Fatal(err)
		}
		out, err := sys.Create("sorted")
		if err != nil {
			log.Fatal(err)
		}

		// SortCtx is the cancellable form: deadline or Ctrl-C contexts
		// abort mid-sort and destroy the temporary runs.
		sys.ResetStats()
		start := time.Now()
		if err := sys.SortCtx(context.Background(), a, in, out, budget); err != nil {
			log.Fatal(err)
		}
		wall := time.Since(start)
		st := sys.Stats()

		// Sanity: the output is the sorted permutation.
		it := out.Scan()
		first, err := it.Next()
		if err != nil {
			log.Fatal(err)
		}
		if wlpm.Key(first) != 0 || out.Len() != n {
			log.Fatalf("%s: bad output", a.Name())
		}
		it.Close()

		fmt.Printf("%-12s response %8v   writes %9d   reads %10d cachelines\n",
			a.Name(), (wall + st.SimTime()).Round(time.Millisecond), st.Writes, st.Reads)
	}
	fmt.Println("\nwrite-limited sorts trade expensive persistent-memory writes for cheap reads")
}
