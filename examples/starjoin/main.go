// Star-schema scenario: a small dimension table joins a large fact
// table — the paper's 1:10 microbenchmark shape. The example runs the
// write-limited joins against the classical baselines at a tight memory
// budget and prints who writes what, reproducing the headline claim that
// lazy hash join beats standard hash join by a wide margin at small
// memory while writing a fraction of the cachelines.
package main

import (
	"fmt"
	"log"
	"time"

	"wlpm"
)

const (
	dimRows  = 20_000
	factRows = 200_000
	budget   = int64(dimRows * wlpm.RecordSize / 20) // 5% of the dimension
)

func main() {
	fmt.Printf("star join: dimension %d ⋈ fact %d, memory %d B, λ = 15\n\n", dimRows, factRows, budget)
	fmt.Printf("%-16s %12s %12s %12s %10s\n", "algorithm", "response", "writes", "reads", "matches")

	for _, a := range []wlpm.JoinAlgorithm{
		wlpm.HashJoin(),
		wlpm.GraceJoin(),
		wlpm.NestedLoopsJoin(),
		wlpm.LazyHashJoin(),
		wlpm.SegmentedGraceJoin(0.5),
		wlpm.HybridJoin(0.5, 0.5),
		wlpm.AutoHybridJoin(),
	} {
		sys, err := wlpm.New(wlpm.WithCapacity(1 << 30))
		if err != nil {
			log.Fatal(err)
		}
		dim, err := sys.Create("dimension")
		if err != nil {
			log.Fatal(err)
		}
		fact, err := sys.Create("fact")
		if err != nil {
			log.Fatal(err)
		}
		if err := wlpm.GenerateJoinInputs(dimRows, factRows, 11, dim.Append, fact.Append); err != nil {
			log.Fatal(err)
		}
		if err := dim.Close(); err != nil {
			log.Fatal(err)
		}
		if err := fact.Close(); err != nil {
			log.Fatal(err)
		}
		out, err := sys.CreateSized("result", 2*wlpm.RecordSize)
		if err != nil {
			log.Fatal(err)
		}

		sys.ResetStats()
		start := time.Now()
		if err := sys.Join(a, dim, fact, out, budget); err != nil {
			log.Fatal(err)
		}
		wall := time.Since(start)
		st := sys.Stats()
		fmt.Printf("%-16s %12v %12d %12d %10d\n",
			a.Name(), (wall + st.SimTime()).Round(time.Millisecond), st.Writes, st.Reads, out.Len())
	}
	fmt.Println("\nwrite-limited joins approach the nested-loops write floor without its read explosion")
}
