// Star-schema scenario on the query engine: two dimension tables join a
// fact table — the paper's 1:10 microbenchmark shape — then the result
// is rolled up and ordered, all through one wlpm.Query plan. The example
// contrasts the cost-model planner's picks against pinned physical
// algorithms and pipelined against materialize-every-step execution,
// reproducing the headline claim at the plan level: write-limited
// operator choices plus streaming composition cut the plan's cacheline
// writes to a third of the naive baseline's without changing a byte of
// the result.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"wlpm"
)

const (
	dimRows  = 20_000
	factRows = 200_000
	budget   = int64(factRows * wlpm.RecordSize / 20) // 5% of the fact table
)

// setup loads a fresh system with the three tables. The memory budget is
// administered by the System's broker: each query session requests a
// grant of `budget` bytes, and the planner prices the plan at the grant.
func setup() (*wlpm.System, wlpm.Collection, wlpm.Collection, wlpm.Collection) {
	sys, err := wlpm.New(wlpm.WithCapacity(1<<30), wlpm.WithMemoryBudget(2*budget))
	if err != nil {
		log.Fatal(err)
	}
	dim1, err := sys.Create("customers")
	if err != nil {
		log.Fatal(err)
	}
	fact, err := sys.Create("orders")
	if err != nil {
		log.Fatal(err)
	}
	if err := wlpm.GenerateJoinInputs(dimRows, factRows, 11, dim1.Append, fact.Append); err != nil {
		log.Fatal(err)
	}
	dim2, err := sys.Create("regions")
	if err != nil {
		log.Fatal(err)
	}
	if err := wlpm.GenerateRecords(dimRows, 17, dim2.Append); err != nil {
		log.Fatal(err)
	}
	for _, c := range []wlpm.Collection{dim1, dim2, fact} {
		if err := c.Close(); err != nil {
			log.Fatal(err)
		}
	}
	return sys, dim1, dim2, fact
}

// plan builds the star query on a session; pinning sortA/joinA overrides
// the planner (nil leaves the choice to the cost model).
func plan(sess *wlpm.Session, dim1, dim2, fact wlpm.Collection, sortA wlpm.SortAlgorithm, joinA wlpm.JoinAlgorithm) *wlpm.Query {
	inner := sess.Query(dim1).JoinWith(sess.Query(fact), joinA)
	star := sess.Query(dim2).JoinWith(inner, joinA)
	return star.Project(0, 1, 12, 13, 23, 24, 5, 16, 27, 8).
		GroupByWith(3, sortA).
		OrderByWith(sortA)
}

func main() {
	fmt.Printf("star query: %d regions ⋈ (%d customers ⋈ %d orders) → group-by → order-by\n",
		dimRows, dimRows, factRows)
	fmt.Printf("memory %d B for the whole plan, λ = 15\n\n", budget)

	// Show what the planner does with the open plan at the session grant.
	sys, d1, d2, f := setup()
	ex, err := plan(sys.Session(wlpm.WithSessionBudget(budget)), d1, d2, f, nil, nil).ExplainGranted()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ex.String())
	fmt.Println()

	fmt.Printf("%-34s %12s %12s %12s %8s\n", "execution", "response", "writes", "reads", "groups")
	for _, row := range []struct {
		name        string
		sortA       wlpm.SortAlgorithm
		joinA       wlpm.JoinAlgorithm
		materialize bool
	}{
		{"materialized, ExMS + HJ", wlpm.ExternalMergeSort(), wlpm.HashJoin(), true},
		{"materialized, planner", nil, nil, true},
		{"pipelined, ExMS + HJ", wlpm.ExternalMergeSort(), wlpm.HashJoin(), false},
		{"pipelined, GJ fixed", wlpm.ExternalMergeSort(), wlpm.GraceJoin(), false},
		{"pipelined, planner", nil, nil, false},
	} {
		sys, dim1, dim2, fact := setup()
		sess := sys.Session(wlpm.WithSessionBudget(budget))
		q := plan(sess, dim1, dim2, fact, row.sortA, row.joinA)
		out, err := sys.Create("result")
		if err != nil {
			log.Fatal(err)
		}
		ctx := context.Background()
		sys.ResetStats()
		start := time.Now()
		if row.materialize {
			err = q.RunMaterializedCtx(ctx, out)
		} else {
			_, err = q.RunCtx(ctx, out)
		}
		if err != nil {
			log.Fatal(err)
		}
		wall := time.Since(start)
		st := sys.Stats()
		fmt.Printf("%-34s %12v %12d %12d %8d\n",
			row.name, (wall + st.SimTime()).Round(time.Millisecond), st.Writes, st.Reads, out.Len())
	}
	fmt.Println("\nevery row returns the identical result; streaming operators and cost-model")
	fmt.Println("operator choice each cut the cacheline-write bill on asymmetric memory")
}
