// Concurrent-service scenario: one System serves several clients at
// once, the shape the redesigned API is built for. Each client owns a
// Session; every query requests a working-memory grant from the
// System's broker before it is planned, so however many clients pile
// on, the sum of the operator budgets never exceeds what the
// administrator configured with WithMemoryBudget — admission control
// queues the excess instead of oversubscribing the device host's DRAM.
//
// The example runs a burst of analytics queries from several sessions,
// streams one result through the database/sql-style Rows cursor, shows
// a fail-fast session bouncing off a saturated broker, and cancels a
// long query mid-sort — demonstrating that cancellation releases the
// grant and destroys the query's temporary collections.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"wlpm"
)

const (
	sensors  = 5_000
	readings = 100_000
	// Per-query working memory: 5% of the fact table. The System budget
	// admits two such grants, so a burst of four queries runs two at a
	// time, FIFO.
	perQuery = int64(readings * wlpm.RecordSize / 20)
)

func main() {
	sys, err := wlpm.New(
		wlpm.WithCapacity(1<<30),
		wlpm.WithMemoryBudget(2*perQuery),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system budget %d B, per-query grant %d B (2 concurrent grants)\n\n", sys.MemoryBudget(), perQuery)

	dims, err := sys.Create("sensors")
	if err != nil {
		log.Fatal(err)
	}
	facts, err := sys.Create("readings")
	if err != nil {
		log.Fatal(err)
	}
	if err := wlpm.GenerateJoinInputs(sensors, readings, 3, dims.Append, facts.Append); err != nil {
		log.Fatal(err)
	}
	for _, c := range []wlpm.Collection{dims, facts} {
		if err := c.Close(); err != nil {
			log.Fatal(err)
		}
	}

	// query: join the metering fact table against the sensor dimension,
	// roll up per sensor, order by sensor id.
	query := func(sess *wlpm.Session) *wlpm.Query {
		return sess.Query(dims).Join(sess.Query(facts)).
			Project(0, 1, 12, 13, 14, 5, 16, 7, 18, 9).
			GroupBy(3).OrderBy()
	}

	// 1. A burst of clients. Each session blocks until the broker admits
	// its grant; no combination of arrivals can exceed the system budget.
	fmt.Println("burst: 4 sessions, 1 query each, admitted 2 at a time")
	var wg sync.WaitGroup
	start := time.Now()
	for client := 0; client < 4; client++ {
		sess := sys.Session(wlpm.WithSessionBudget(perQuery))
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			t := time.Now()
			rows, err := query(sess).Rows(context.Background())
			if err != nil {
				log.Fatal(err)
			}
			n := 0
			for rows.Next() {
				n++
			}
			if err := rows.Err(); err != nil {
				log.Fatal(err)
			}
			if err := rows.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  client %d: %5d groups in %8v (in use after close: %d B)\n",
				client, n, time.Since(t).Round(time.Millisecond), sys.MemoryInUse())
		}(client)
	}
	wg.Wait()
	fmt.Printf("burst done in %v, memory in use %d B\n\n", time.Since(start).Round(time.Millisecond), sys.MemoryInUse())

	// 2. Stream a result through the cursor: first five sensors by id.
	fmt.Println("streaming cursor: first 5 sensor rollups")
	rows, err := query(sys.Session(wlpm.WithSessionBudget(perQuery))).Rows(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5 && rows.Next(); i++ {
		var id, count, sum uint64
		if err := rows.Scan(&id, &count, &sum); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  sensor %4d: %2d readings, Σ=%d\n", id, count, sum)
	}
	if err := rows.Close(); err != nil { // early close: grant released, temps destroyed
		log.Fatal(err)
	}

	// 3. Fail-fast admission: while one session holds the whole budget,
	// an AdmitFailFast session is bounced instead of queued.
	hog := sys.Session(wlpm.WithSessionBudget(sys.MemoryBudget()))
	held, err := query(hog).Rows(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	impatient := sys.Session(wlpm.WithAdmission(wlpm.AdmitFailFast))
	bounce := func() error {
		rows, err := query(impatient).Rows(context.Background())
		if err != nil {
			return err
		}
		rows.Close() //nolint:errcheck // unexpected admission: release before bailing
		return errors.New("fail-fast session was admitted while the budget was held")
	}
	if err := bounce(); errors.Is(err, wlpm.ErrAdmission) {
		fmt.Printf("\nfail-fast session while the budget is held: %v\n", err)
	} else {
		log.Fatal(err)
	}
	if err := held.Close(); err != nil {
		log.Fatal(err)
	}

	// 4. Cancellation mid-query: the context deadline fires inside the
	// sort; the error surfaces, the grant returns to the broker and the
	// query's spilled runs are destroyed.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	deadline := func() error {
		rows, err := query(sys.Session(wlpm.WithSessionBudget(perQuery))).Rows(ctx)
		if err != nil {
			return err
		}
		rows.Close() //nolint:errcheck // unexpected completion: release before bailing
		return errors.New("expected a deadline error, got a row stream")
	}
	err = deadline()
	fmt.Printf("\ncancelled query: %v (memory in use: %d B)\n", err, sys.MemoryInUse())
	if !errors.Is(err, context.DeadlineExceeded) {
		log.Fatalf("expected a deadline error, got %v", err)
	}

	fmt.Println("\none budget, many clients: the broker rations the paper's scarce resource —")
	fmt.Println("operator working memory — the same way the cost model does within a plan")
}
