// Aggregation scenario: a metering workload — many readings per sensor —
// is rolled up to per-sensor count/sum/min/max. Aggregation is the
// paper's named "next operation" for write-limited processing (§6): the
// group-by inherits the write profile of whatever sort produces its
// grouped order, so the same intensity knob that tunes sorting tunes the
// rollup's device wear.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"wlpm"
)

const (
	readings = 150_000
	sensors  = 1_000
	budget   = int64(readings * wlpm.RecordSize / 20)
)

func main() {
	fmt.Printf("rollup: %d readings over %d sensors, aggregating attribute 3\n\n", readings, sensors)
	for _, a := range []wlpm.SortAlgorithm{
		wlpm.ExternalMergeSort(),
		wlpm.SegmentSort(0.2),
		wlpm.LazySort(),
	} {
		sys, err := wlpm.New(wlpm.WithCapacity(1 << 30))
		if err != nil {
			log.Fatal(err)
		}
		in, err := sys.Create("readings")
		if err != nil {
			log.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < readings; i++ {
			rec := wlpm.NewRecord(uint64(rng.Intn(sensors)))
			wlpm.SetAttr(rec, 3, uint64(rng.Intn(10_000))) // the reading value
			if err := in.Append(rec); err != nil {
				log.Fatal(err)
			}
		}
		if err := in.Close(); err != nil {
			log.Fatal(err)
		}
		out, err := sys.Create("rollup")
		if err != nil {
			log.Fatal(err)
		}

		sys.ResetStats()
		start := time.Now()
		if err := sys.GroupBy(a, in, 3, out, budget); err != nil {
			log.Fatal(err)
		}
		wall := time.Since(start)
		st := sys.Stats()

		// Show one group as a sanity probe.
		it := out.Scan()
		first, err := it.Next()
		if err != nil {
			log.Fatal(err)
		}
		it.Close()
		fmt.Printf("%-12s groups %5d   writes %8d   reads %9d   wall+sim %8v   (sensor %d: n=%d sum=%d)\n",
			a.Name(), out.Len(), st.Writes, st.Reads, (wall + st.SimTime()).Round(time.Millisecond),
			wlpm.Attr(first, wlpm.GroupAttrKey), wlpm.Attr(first, wlpm.GroupAttrCount), wlpm.Attr(first, wlpm.GroupAttrSum))
	}
	fmt.Println("\nthe aggregation inherits each sort's write profile — tune wear with the same knob")
}
