// Aggregation scenario on the query engine: a metering workload — many
// readings per sensor — is filtered and rolled up to per-sensor
// count/sum/min/max through one wlpm.Query plan. Aggregation is the
// paper's named "next operation" for write-limited processing (§6): the
// group-by inherits the write profile of whatever sort the planner
// places under it, and a group-count hint lets the planner skip the sort
// entirely when the groups fit the stage budget.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"wlpm"
)

const (
	readings = 150_000
	sensors  = 1_000
	budget   = int64(readings * wlpm.RecordSize / 20)
)

func load() (*wlpm.System, wlpm.Collection) {
	sys, err := wlpm.New(wlpm.WithCapacity(1<<30), wlpm.WithMemoryBudget(2*budget))
	if err != nil {
		log.Fatal(err)
	}
	in, err := sys.Create("readings")
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < readings; i++ {
		rec := wlpm.NewRecord(uint64(rng.Intn(sensors)))
		wlpm.SetAttr(rec, 3, uint64(rng.Intn(10_000))) // the reading value
		if err := in.Append(rec); err != nil {
			log.Fatal(err)
		}
	}
	if err := in.Close(); err != nil {
		log.Fatal(err)
	}
	return sys, in
}

func main() {
	fmt.Printf("rollup: %d readings over %d sensors, aggregating attribute 3\n\n", readings, sensors)
	fmt.Printf("%-28s %8s %10s %11s %10s   %s\n", "plan", "groups", "writes", "reads", "resp", "planner's pick")

	for _, row := range []struct {
		name  string
		build func(sess *wlpm.Session, in wlpm.Collection) *wlpm.Query
	}{
		{"groupby (pinned ExMS)", func(sess *wlpm.Session, in wlpm.Collection) *wlpm.Query {
			return sess.Query(in).GroupByWith(3, wlpm.ExternalMergeSort())
		}},
		{"groupby (pinned SegS 0.2)", func(sess *wlpm.Session, in wlpm.Collection) *wlpm.Query {
			return sess.Query(in).GroupByWith(3, wlpm.SegmentSort(0.2))
		}},
		{"groupby (planner, no hint)", func(sess *wlpm.Session, in wlpm.Collection) *wlpm.Query {
			return sess.Query(in).GroupBy(3)
		}},
		{"groupby (planner + hint)", func(sess *wlpm.Session, in wlpm.Collection) *wlpm.Query {
			return sess.Query(in).GroupHint(sensors).GroupBy(3)
		}},
		{"filter → groupby (hint)", func(sess *wlpm.Session, in wlpm.Collection) *wlpm.Query {
			return sess.Query(in).
				Filter(wlpm.Predicate{Attr: 3, Op: wlpm.CmpGe, Value: 5_000}).
				GroupHint(sensors).GroupBy(3)
		}},
	} {
		sys, in := load()
		// A session per run: the broker accounts the plan's memory and
		// the planner prices the plan at the session's grant.
		sess := sys.Session(wlpm.WithSessionBudget(budget))
		q := row.build(sess, in)
		ex, err := q.ExplainGranted()
		if err != nil {
			log.Fatal(err)
		}
		pick := "—"
		if len(ex.Choices) > 0 {
			pick = ex.Choices[len(ex.Choices)-1].Algorithm
		}
		out, err := sys.Create("rollup")
		if err != nil {
			log.Fatal(err)
		}
		sys.ResetStats()
		start := time.Now()
		if _, err := q.RunCtx(context.Background(), out); err != nil {
			log.Fatal(err)
		}
		wall := time.Since(start)
		st := sys.Stats()
		fmt.Printf("%-28s %8d %10d %11d %10v   %s\n",
			row.name, out.Len(), st.Writes, st.Reads,
			(wall + st.SimTime()).Round(time.Millisecond), pick)
	}
	fmt.Println("\nthe hinted plan holds the groups in DRAM and writes only the result;")
	fmt.Println("unhinted plans inherit the write profile of the planner's sort choice")
}
