package wlpm

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

// TestSessionNamespaceConcurrentMaterialize is the collision regression:
// two sessions materialize the same plan concurrently, both calling
// Create("result"). Before session namespaces the second Create failed
// with the factory's unique-name error; now each session creates inside
// its own namespace and the runs produce byte-identical output.
func TestSessionNamespaceConcurrentMaterialize(t *testing.T) {
	sys := newTestSystem(t, WithMemoryBudget(8<<20))
	dim1, dim2, fact := loadStarTables(t, sys, 300, 3000, "")

	const K = 2
	outs := make([]Collection, K)
	errs := make([]error, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := sys.Session(WithSessionBudget(1 << 20))
			out, err := sess.Create("result")
			if err != nil {
				errs[i] = err
				return
			}
			outs[i] = out
			_, errs[i] = starQuery(sess, dim1, dim2, fact).RunCtx(context.Background(), out)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	var ref []byte
	for i, out := range outs {
		var buf bytes.Buffer
		it := out.Scan()
		for {
			rec, err := it.Next()
			if err != nil {
				break
			}
			buf.Write(rec)
		}
		if err := it.Close(); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = buf.Bytes()
			if len(ref) == 0 {
				t.Fatal("empty materialized result")
			}
			continue
		}
		if !bytes.Equal(ref, buf.Bytes()) {
			t.Fatalf("session %d materialized different bytes than session 0", i)
		}
	}
	if outs[0].Name() == outs[1].Name() {
		t.Fatalf("both sessions materialized into %q — namespaces did not separate them", outs[0].Name())
	}
}

// TestSessionNamespaceShape pins the namespace format and the closed-
// session behaviour.
func TestSessionNamespaceShape(t *testing.T) {
	sys := newTestSystem(t)
	plain := sys.Session()
	labelled := sys.Session(WithTenant("alpha"))
	if plain.Namespace() == labelled.Namespace() {
		t.Fatalf("sessions share namespace %q", plain.Namespace())
	}
	if !strings.HasPrefix(labelled.Namespace(), "alpha.") {
		t.Fatalf("tenant-labelled namespace %q lacks the tenant prefix", labelled.Namespace())
	}
	if labelled.Tenant() != "alpha" {
		t.Fatalf("Tenant() = %q, want alpha", labelled.Tenant())
	}
	c, err := labelled.Create("out")
	if err != nil {
		t.Fatal(err)
	}
	if want := labelled.Namespace() + "out"; c.Name() != want {
		t.Fatalf("created %q, want %q", c.Name(), want)
	}
	if err := labelled.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := labelled.Create("out2"); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Create on closed session: %v, want ErrSessionClosed", err)
	}
}

// TestSessionBiddingRepricesWhileQueued exercises the façade half of the
// wake-and-reprice path: a bidding session whose static candidates do
// not fit the freed budget still admits, at the free size, because the
// broker re-prices the queued bid on release.
func TestSessionBiddingRepricesWhileQueued(t *testing.T) {
	total := int64(8 << 20)
	sys := newTestSystem(t, WithMemoryBudget(total))
	in, err := sys.Create("bidin")
	if err != nil {
		t.Fatal(err)
	}
	if err := GenerateRecords(2000, 11, in.Append); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}

	// Pin the whole budget, leaving a sliver free that is smaller than
	// every static bid candidate (total, 1/2, 1/4, 1/8 of the session
	// budget = total ... total/8).
	hold := sys.Session(WithSessionBudget(total - total/16))
	hrows, err := hold.Query(in).OrderBy().Rows(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer hrows.Close()

	bidder := sys.Session(WithSessionBudget(total), WithGrantBidding(1e9))
	done := make(chan error, 1)
	var rows *Rows
	go func() {
		var err error
		rows, err = bidder.Query(in).OrderBy().Rows(context.Background())
		done <- err
	}()
	// The bid queues: even total/8 = 1 MiB exceeds the free total/16.
	for sys.mem.Waiting() == 0 {
		select {
		case err := <-done:
			t.Fatalf("bid admitted before any release (err=%v)", err)
		default:
		}
	}
	// Release the holder: the whole budget frees, the queued bid is
	// re-priced and admitted.
	if err := hrows.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 2000 {
		t.Fatalf("bidder streamed %d rows, want 2000", n)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if use := sys.MemoryInUse(); use != 0 {
		t.Fatalf("%d B still granted", use)
	}
}
